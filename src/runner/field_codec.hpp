// Field-descriptor mini-reflection for trial result types.
//
// One declaration next to a result struct,
//
//   struct DBoundTrialResult { int d_upper_ms = 0; int probes = 0; };
//   ANIMUS_FIELDS(DBoundTrialResult, d_upper_ms, probes)
//
// derives everything the runner stack needs to move that struct across
// a serialization boundary, instead of a hand-written codec per type:
//
//   - TrialCodec<T>::encode/decode — the exact, line-safe round-trip
//     used by checkpoint files and by the cross-process sharded backend
//     (results travel over a pipe as encoded text);
//   - csv_header<T>() / csv_row(v) — per-trial CSV emission in
//     runner::bench_cli (--trials-out), nested structs flattened to
//     dotted column names ("alert.max_pixels");
//   - field-by-field visitation (for_each_field) for anything else that
//     wants the layout (manifest JSON, future diff tooling).
//
// Supported field types: bool, integral, enum (encoded by underlying
// value), float/double (exact: shortest round-trip text for finite
// values, explicit nan/-nan/inf/-inf tokens for the non-finite ones
// strtod round-trips inconsistently across libcs), std::string
// (escaped), any
// std::chrono::duration (encoded by tick count), and nested structs
// that carry their own ANIMUS_FIELDS declaration.
//
// The encoding is a single line of `name=value` pairs separated by ';',
// nested structs wrapped in braces:
//
//   d_upper_ms=412;probes=11
//   outcome=1;alert={shows=3;max_pixels=72;...};cycles=20
//
// Decoding matches pairs by NAME, not position: unknown names are
// ignored and missing names keep their default-constructed value, so a
// checkpoint written before a field was added still resumes. Decode
// returns false on a syntax error or when a matched value fails to
// parse — the caller treats the checkpoint as corrupt.
//
// This header is dependency-free (standard library only) so result
// structs anywhere in the tree — src/core, src/server, benches — can
// declare their fields without creating a link edge to the runner.
#pragma once

#include <cerrno>
#include <charconv>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <string>
#include <string_view>
#include <tuple>
#include <type_traits>

namespace animus::runner {

// ------------------------------------------------------------- descriptors

/// One described field: display name + pointer-to-member.
template <typename T, typename M>
struct FieldDef {
  const char* name;
  M T::*member;
};

template <typename T, typename M>
constexpr FieldDef<T, M> field_def(const char* name, M T::*member) {
  return {name, member};
}

namespace codec_detail {

template <typename T, typename = void>
struct HasFields : std::false_type {};
template <typename T>
struct HasFields<T, std::void_t<decltype(animus_fields(static_cast<const T*>(nullptr)))>>
    : std::true_type {};

template <typename T>
struct IsDuration : std::false_type {};
template <typename R, typename P>
struct IsDuration<std::chrono::duration<R, P>> : std::true_type {};

template <typename>
inline constexpr bool kAlwaysFalse = false;

}  // namespace codec_detail

/// True when T has an ANIMUS_FIELDS declaration visible via ADL.
template <typename T>
inline constexpr bool kHasFields = codec_detail::HasFields<T>::value;

/// Visit every described field of `v` as fn(name, member_reference).
template <typename T, typename Fn>
void for_each_field(T& v, Fn&& fn) {
  static_assert(kHasFields<std::remove_const_t<T>>,
                "type has no ANIMUS_FIELDS declaration");
  std::apply([&](const auto&... defs) { (fn(defs.name, v.*(defs.member)), ...); },
             animus_fields(static_cast<const std::remove_const_t<T>*>(nullptr)));
}

// ---------------------------------------------------------- scalar values

namespace codec_detail {

/// Exact double text: shortest-round-trip to_chars recovers every
/// finite value bit for bit at a fraction of snprintf's cost (this runs
/// once per numeric field per trial — it is on the sweep hot path); the
/// non-finite values get fixed tokens because strtod's acceptance of
/// printf's "nan(...)" payload forms varies by libc.
inline void encode_double(std::string& out, double v) {
  if (std::isnan(v)) {
    out += std::signbit(v) ? "-nan" : "nan";
    return;
  }
  if (std::isinf(v)) {
    out += v < 0 ? "-inf" : "inf";
    return;
  }
  char buf[48];
  const auto r = std::to_chars(buf, buf + sizeof(buf), v);
  out.append(buf, static_cast<std::size_t>(r.ptr - buf));
}

inline bool decode_double(std::string_view s, double* out) {
  if (s == "nan") {
    *out = std::numeric_limits<double>::quiet_NaN();
    return true;
  }
  if (s == "-nan") {
    *out = -std::numeric_limits<double>::quiet_NaN();
    return true;
  }
  if (s == "inf") {
    *out = std::numeric_limits<double>::infinity();
    return true;
  }
  if (s == "-inf") {
    *out = -std::numeric_limits<double>::infinity();
    return true;
  }
  if (s.empty()) return false;
  // encode_double only ever emits to_chars output (or the fixed tokens
  // above), so restrict the decode domain to exactly that alphabet —
  // strtod alone would also admit "nan(0x1)", hex floats, etc. The '+'
  // stays admitted for checkpoints written by the older %.17g encoder.
  for (const char c : s) {
    const bool ok = (c >= '0' && c <= '9') || c == '+' || c == '-' || c == '.' || c == 'e';
    if (!ok) return false;
  }
  const std::string tmp(s);
  char* end = nullptr;
  errno = 0;  // strtod flags subnormals ERANGE on some libcs; value is still exact
  *out = std::strtod(tmp.c_str(), &end);
  return end == tmp.c_str() + tmp.size();
}

inline void escape_string(std::string& out, std::string_view s) {
  for (const char c : s) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case ';': out += "\\:"; break;   // keep ';' free as the pair separator
      case '=': out += "\\e"; break;
      case '{': out += "\\<"; break;
      case '}': out += "\\>"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      default: out += c; break;
    }
  }
}

inline bool unescape_string(std::string_view s, std::string* out) {
  out->clear();
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] != '\\') {
      *out += s[i];
      continue;
    }
    if (++i >= s.size()) return false;
    switch (s[i]) {
      case '\\': *out += '\\'; break;
      case ':': *out += ';'; break;
      case 'e': *out += '='; break;
      case '<': *out += '{'; break;
      case '>': *out += '}'; break;
      case 'n': *out += '\n'; break;
      case 'r': *out += '\r'; break;
      default: return false;
    }
  }
  return true;
}

}  // namespace codec_detail

/// Append the encoded form of `v` to `out`.
template <typename T>
void encode_value(std::string& out, const T& v) {
  if constexpr (std::is_same_v<T, bool>) {
    out += v ? '1' : '0';
  } else if constexpr (std::is_enum_v<T>) {
    encode_value(out, static_cast<std::underlying_type_t<T>>(v));
  } else if constexpr (std::is_floating_point_v<T>) {
    codec_detail::encode_double(out, static_cast<double>(v));
  } else if constexpr (std::is_integral_v<T>) {
    out += std::to_string(v);
  } else if constexpr (codec_detail::IsDuration<T>::value) {
    out += std::to_string(static_cast<std::int64_t>(v.count()));
  } else if constexpr (std::is_same_v<T, std::string>) {
    codec_detail::escape_string(out, v);
  } else if constexpr (kHasFields<T>) {
    out += '{';
    bool first = true;
    for_each_field(v, [&](const char* name, const auto& member) {
      if (!first) out += ';';
      first = false;
      out += name;
      out += '=';
      encode_value(out, member);
    });
    out += '}';
  } else {
    static_assert(codec_detail::kAlwaysFalse<T>,
                  "no codec for this field type — add ANIMUS_FIELDS() to the "
                  "struct or extend encode_value()");
  }
}

/// Parse the encoded form produced by encode_value. Returns false on a
/// syntax error or unparsable matched value.
template <typename T>
bool decode_value(std::string_view s, T* out);

namespace codec_detail {

/// Split `body` ("a=1;b={x=2;y=3};c=4") into name/value pairs at
/// top-level ';', honoring nesting braces and escapes, and hand each to
/// fn(name, value). Returns false on malformed input.
template <typename Fn>
bool split_pairs(std::string_view body, Fn&& fn) {
  std::size_t pos = 0;
  while (pos < body.size()) {
    const std::size_t eq = body.find('=', pos);
    if (eq == std::string_view::npos || eq == pos) return false;
    const std::string_view name = body.substr(pos, eq - pos);
    // Field names never contain structure characters; seeing one here
    // means a mangled pair (e.g. ";;") — report it, don't mis-parse.
    if (name.find_first_of(";{}\\") != std::string_view::npos) return false;
    std::size_t end = eq + 1;
    int depth = 0;
    for (; end < body.size(); ++end) {
      const char c = body[end];
      if (c == '\\') {
        if (++end >= body.size()) return false;
      } else if (c == '{') {
        ++depth;
      } else if (c == '}') {
        if (--depth < 0) return false;
      } else if (c == ';' && depth == 0) {
        break;
      }
    }
    if (depth != 0) return false;
    if (!fn(name, body.substr(eq + 1, end - eq - 1))) return false;
    pos = end + (end < body.size() ? 1 : 0);
    if (pos == body.size() && end < body.size()) return false;  // trailing ';'
  }
  return true;
}

}  // namespace codec_detail

template <typename T>
bool decode_value(std::string_view s, T* out) {
  if constexpr (std::is_same_v<T, bool>) {
    if (s == "1" || s == "true") {
      *out = true;
    } else if (s == "0" || s == "false") {
      *out = false;
    } else {
      return false;
    }
    return true;
  } else if constexpr (std::is_enum_v<T>) {
    std::underlying_type_t<T> raw{};
    if (!decode_value(s, &raw)) return false;
    *out = static_cast<T>(raw);
    return true;
  } else if constexpr (std::is_floating_point_v<T>) {
    double d = 0.0;
    if (!codec_detail::decode_double(s, &d)) return false;
    *out = static_cast<T>(d);
    return true;
  } else if constexpr (std::is_integral_v<T>) {
    if (s.empty()) return false;
    const std::string tmp(s);
    char* end = nullptr;
    if constexpr (std::is_signed_v<T>) {
      const long long v = std::strtoll(tmp.c_str(), &end, 10);
      *out = static_cast<T>(v);
    } else {
      const unsigned long long v = std::strtoull(tmp.c_str(), &end, 10);
      *out = static_cast<T>(v);
    }
    return end == tmp.c_str() + tmp.size();
  } else if constexpr (codec_detail::IsDuration<T>::value) {
    std::int64_t ticks = 0;
    if (!decode_value(s, &ticks)) return false;
    *out = T{static_cast<typename T::rep>(ticks)};
    return true;
  } else if constexpr (std::is_same_v<T, std::string>) {
    return codec_detail::unescape_string(s, out);
  } else if constexpr (kHasFields<T>) {
    if (s.size() < 2 || s.front() != '{' || s.back() != '}') return false;
    const std::string_view body = s.substr(1, s.size() - 2);
    bool ok = true;
    const bool parsed = codec_detail::split_pairs(body, [&](std::string_view name,
                                                            std::string_view value) {
      for_each_field(*out, [&](const char* fname, auto& member) {
        if (name == fname) ok = ok && decode_value(value, &member);
      });
      return ok;  // unknown names ignored; a bad matched value aborts
    });
    return parsed && ok;
  } else {
    static_assert(codec_detail::kAlwaysFalse<T>, "no codec for this field type");
  }
}

// -------------------------------------------------------------- TrialCodec

/// Exact, line-safe round-trip codec for trial result types: the
/// contract checkpoint/resume and the process-shard backend both rely on
/// for byte-identical merged output. Scalars (double, int, bool, enums)
/// work out of the box; struct results need one ANIMUS_FIELDS
/// declaration. Specialize only for types the field machinery cannot
/// express.
template <typename R>
struct TrialCodec {
  static std::string encode(const R& v) {
    std::string out;
    if constexpr (kHasFields<R>) {
      // Top-level structs drop the braces: the checkpoint line already
      // delimits the value, and `a=1;b=2` beats `{a=1;b=2}` for eyes.
      bool first = true;
      for_each_field(v, [&](const char* name, const auto& member) {
        if (!first) out += ';';
        first = false;
        out += name;
        out += '=';
        encode_value(out, member);
      });
    } else {
      encode_value(out, v);
    }
    return out;
  }

  static bool decode(std::string_view s, R* out) {
    *out = R{};
    if constexpr (kHasFields<R>) {
      std::string wrapped;
      wrapped.reserve(s.size() + 2);
      wrapped += '{';
      wrapped.append(s.data(), s.size());
      wrapped += '}';
      return decode_value(std::string_view{wrapped}, out);
    } else {
      return decode_value(s, out);
    }
  }
};

// ---------------------------------------------------------- CSV derivation

namespace codec_detail {

template <typename T>
void append_csv_header(std::string& out, const std::string& prefix, bool* first) {
  T* probe = nullptr;
  std::apply(
      [&](const auto&... defs) {
        (
            [&] {
              using M = std::remove_reference_t<decltype(probe->*(defs.member))>;
              if constexpr (kHasFields<M>) {
                append_csv_header<M>(out, prefix + defs.name + ".", first);
              } else {
                if (!*first) out += ',';
                *first = false;
                out += prefix;
                out += defs.name;
              }
            }(),
            ...);
      },
      animus_fields(static_cast<const T*>(nullptr)));
}

template <typename T>
void append_csv_row(std::string& out, const T& v, bool* first) {
  for_each_field(v, [&](const char*, const auto& member) {
    using M = std::remove_const_t<std::remove_reference_t<decltype(member)>>;
    if constexpr (kHasFields<M>) {
      append_csv_row(out, member, first);
    } else {
      if (!*first) out += ',';
      *first = false;
      if constexpr (std::is_same_v<M, std::string>) {
        escape_string(out, member);  // keeps the row one line, comma-free
      } else {
        encode_value(out, member);
      }
    }
  });
}

}  // namespace codec_detail

/// Flattened CSV column names for a described struct ("d_upper_ms,probes",
/// nested fields dotted: "alert.max_pixels"). Scalar result types get the
/// single column "value".
template <typename R>
std::string csv_header() {
  if constexpr (kHasFields<R>) {
    std::string out;
    bool first = true;
    codec_detail::append_csv_header<R>(out, "", &first);
    return out;
  } else {
    return "value";
  }
}

/// One CSV row matching csv_header<R>() column-for-column.
template <typename R>
std::string csv_row(const R& v) {
  std::string out;
  if constexpr (kHasFields<R>) {
    bool first = true;
    codec_detail::append_csv_row(out, v, &first);
  } else {
    encode_value(out, v);
  }
  return out;
}

}  // namespace animus::runner

// ------------------------------------------------------------------ macro
//
// ANIMUS_FIELDS(Type, f1, f2, ...) expands to an `animus_fields` free
// function returning the field-descriptor tuple. Invoke it in the same
// namespace as Type (right after the struct definition) so ADL finds it.

#define ANIMUS_FC_EXPAND(x) x
#define ANIMUS_FC_NARG(...) \
  ANIMUS_FC_EXPAND(ANIMUS_FC_ARG_N(__VA_ARGS__, 16, 15, 14, 13, 12, 11, 10, 9, 8, 7, 6, 5, 4, 3, 2, 1))
#define ANIMUS_FC_ARG_N(_1, _2, _3, _4, _5, _6, _7, _8, _9, _10, _11, _12, _13, _14, _15, _16, N, ...) N

#define ANIMUS_FC_ENTRY(Type, name) ::animus::runner::field_def(#name, &Type::name)
#define ANIMUS_FC_APPLY_1(T, a) ANIMUS_FC_ENTRY(T, a)
#define ANIMUS_FC_APPLY_2(T, a, ...) ANIMUS_FC_ENTRY(T, a), ANIMUS_FC_EXPAND(ANIMUS_FC_APPLY_1(T, __VA_ARGS__))
#define ANIMUS_FC_APPLY_3(T, a, ...) ANIMUS_FC_ENTRY(T, a), ANIMUS_FC_EXPAND(ANIMUS_FC_APPLY_2(T, __VA_ARGS__))
#define ANIMUS_FC_APPLY_4(T, a, ...) ANIMUS_FC_ENTRY(T, a), ANIMUS_FC_EXPAND(ANIMUS_FC_APPLY_3(T, __VA_ARGS__))
#define ANIMUS_FC_APPLY_5(T, a, ...) ANIMUS_FC_ENTRY(T, a), ANIMUS_FC_EXPAND(ANIMUS_FC_APPLY_4(T, __VA_ARGS__))
#define ANIMUS_FC_APPLY_6(T, a, ...) ANIMUS_FC_ENTRY(T, a), ANIMUS_FC_EXPAND(ANIMUS_FC_APPLY_5(T, __VA_ARGS__))
#define ANIMUS_FC_APPLY_7(T, a, ...) ANIMUS_FC_ENTRY(T, a), ANIMUS_FC_EXPAND(ANIMUS_FC_APPLY_6(T, __VA_ARGS__))
#define ANIMUS_FC_APPLY_8(T, a, ...) ANIMUS_FC_ENTRY(T, a), ANIMUS_FC_EXPAND(ANIMUS_FC_APPLY_7(T, __VA_ARGS__))
#define ANIMUS_FC_APPLY_9(T, a, ...) ANIMUS_FC_ENTRY(T, a), ANIMUS_FC_EXPAND(ANIMUS_FC_APPLY_8(T, __VA_ARGS__))
#define ANIMUS_FC_APPLY_10(T, a, ...) ANIMUS_FC_ENTRY(T, a), ANIMUS_FC_EXPAND(ANIMUS_FC_APPLY_9(T, __VA_ARGS__))
#define ANIMUS_FC_APPLY_11(T, a, ...) ANIMUS_FC_ENTRY(T, a), ANIMUS_FC_EXPAND(ANIMUS_FC_APPLY_10(T, __VA_ARGS__))
#define ANIMUS_FC_APPLY_12(T, a, ...) ANIMUS_FC_ENTRY(T, a), ANIMUS_FC_EXPAND(ANIMUS_FC_APPLY_11(T, __VA_ARGS__))
#define ANIMUS_FC_APPLY_13(T, a, ...) ANIMUS_FC_ENTRY(T, a), ANIMUS_FC_EXPAND(ANIMUS_FC_APPLY_12(T, __VA_ARGS__))
#define ANIMUS_FC_APPLY_14(T, a, ...) ANIMUS_FC_ENTRY(T, a), ANIMUS_FC_EXPAND(ANIMUS_FC_APPLY_13(T, __VA_ARGS__))
#define ANIMUS_FC_APPLY_15(T, a, ...) ANIMUS_FC_ENTRY(T, a), ANIMUS_FC_EXPAND(ANIMUS_FC_APPLY_14(T, __VA_ARGS__))
#define ANIMUS_FC_APPLY_16(T, a, ...) ANIMUS_FC_ENTRY(T, a), ANIMUS_FC_EXPAND(ANIMUS_FC_APPLY_15(T, __VA_ARGS__))
#define ANIMUS_FC_APPLY__(N, T, ...) ANIMUS_FC_EXPAND(ANIMUS_FC_APPLY_##N(T, __VA_ARGS__))
#define ANIMUS_FC_APPLY_(N, T, ...) ANIMUS_FC_APPLY__(N, T, __VA_ARGS__)

#define ANIMUS_FIELDS(Type, ...)                                                     \
  [[maybe_unused]] inline constexpr auto animus_fields(const Type*) {                \
    return std::make_tuple(                                                          \
        ANIMUS_FC_APPLY_(ANIMUS_FC_EXPAND(ANIMUS_FC_NARG(__VA_ARGS__)), Type, __VA_ARGS__)); \
  }
