#include "runner/runner.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <exception>
#include <mutex>
#include <random>
#include <thread>

#include "metrics/table.hpp"
#include "obs/trace_capture.hpp"
#include "runner/steal_queue.hpp"

namespace animus::runner {
namespace {

using Clock = std::chrono::steady_clock;

double ms_between(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double, std::milli>(b - a).count();
}

}  // namespace

int resolve_jobs(int requested) {
  if (requested > 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw ? static_cast<int>(hw) : 1;
}

std::uint64_t resolve_root_seed(const RunOptions& options) {
  std::uint64_t root_seed = options.root_seed;
  if (!options.deterministic) {
    // Live mode: fold in OS entropy so repeated runs differ.
    std::random_device entropy;
    root_seed ^= (static_cast<std::uint64_t>(entropy()) << 32) ^ entropy();
  }
  return root_seed;
}

std::uint64_t trial_seed(std::uint64_t root_seed, std::size_t index) {
  // Rng::fork is const (a pure function of the root state and the
  // stream id), so the derivation is identical no matter which worker —
  // or which process — claims the trial.
  return sim::Rng{root_seed}.fork(index).next_u64();
}

double SweepStats::utilization() const {
  const double capacity = static_cast<double>(jobs) * wall_ms;
  if (capacity <= 0.0) return 0.0;
  return std::min(1.0, trial_ms.sum() / capacity);
}

double SweepStats::percentile(double q) const {
  if (samples_ms.empty()) return 0.0;
  std::vector<double> sorted = samples_ms;
  std::sort(sorted.begin(), sorted.end());
  const double clamped = std::clamp(q, 0.0, 1.0);
  const auto rank = static_cast<std::size_t>(
      std::min<double>(std::ceil(clamped * static_cast<double>(sorted.size())),
                       static_cast<double>(sorted.size())));
  return sorted[rank == 0 ? 0 : rank - 1];
}

std::string SweepStats::latency_line() const {
  if (samples_ms.empty()) return "latency: no samples";
  return metrics::fmt("latency/trial: p50 %.2f ms  p90 %.2f ms  p99 %.2f ms  max %.2f ms",
                      percentile(0.50), percentile(0.90), percentile(0.99), trial_ms.max());
}

std::string SweepStats::worker_lines() const {
  std::string out;
  for (std::size_t w = 0; w < workers.size(); ++w) {
    const WorkerUtil& u = workers[w];
    const double span = u.busy_ms + u.wait_ms;
    constexpr int kCells = 24;
    const int filled =
        span > 0.0 ? static_cast<int>(u.busy_ms / span * kCells + 0.5) : 0;
    std::string bar(static_cast<std::size_t>(std::clamp(filled, 0, kCells)), '#');
    bar.resize(kCells, '-');
    out += metrics::fmt("worker %2zu: %5llu trials (%llu stolen)  busy %8.1f ms  "
                        "wait %7.1f ms  [%s]\n",
                        w, static_cast<unsigned long long>(u.trials),
                        static_cast<unsigned long long>(u.stolen), u.busy_ms, u.wait_ms,
                        bar.c_str());
  }
  return out;
}

std::string SweepStats::dispatch_line() const {
  if (dispatch.frames == 0) return {};
  const double mean_batch =
      static_cast<double>(dispatch.trials) / static_cast<double>(dispatch.frames);
  return metrics::fmt("dispatch: %llu frames (mean %.1f, max %llu trials/frame), "
                      "%llu redispatched, %llu B out / %llu B in, "
                      "encode %.2f ms, flush %.2f ms",
                      static_cast<unsigned long long>(dispatch.frames), mean_batch,
                      static_cast<unsigned long long>(dispatch.max_batch),
                      static_cast<unsigned long long>(dispatch.redispatched),
                      static_cast<unsigned long long>(dispatch.bytes_out),
                      static_cast<unsigned long long>(dispatch.bytes_in),
                      dispatch.encode_ms, dispatch.flush_ms);
}

std::string SweepStats::to_string() const {
  if (trial_ms.count() == 0) return "0 trials";
  const double rate = wall_ms > 0.0 ? 1000.0 * static_cast<double>(trial_ms.count()) / wall_ms
                                    : 0.0;
  return metrics::fmt("%zu trials in %.1f ms on %d thread%s — %.1f trials/s, "
                      "mean %.2f ms/trial, utilization %.0f%%",
                      trial_ms.count(), wall_ms, jobs, jobs == 1 ? "" : "s", rate,
                      trial_ms.mean(), 100.0 * utilization());
}

ParallelRunner::ParallelRunner(RunOptions options)
    : options_(std::move(options)), jobs_(resolve_jobs(options_.jobs)) {}

SweepStats ParallelRunner::run(std::size_t total,
                               const std::function<void(const TrialContext&)>& body,
                               std::vector<TrialError>* errors) const {
  std::vector<std::size_t> indices(total);
  for (std::size_t i = 0; i < total; ++i) indices[i] = i;
  return run_subset(indices, total, body, errors);
}

SweepStats ParallelRunner::run_subset(const std::vector<std::size_t>& indices,
                                      std::size_t total,
                                      const std::function<void(const TrialContext&)>& body,
                                      std::vector<TrialError>* errors) const {
  // Bookkeeping for --trace-trial bounds validation (bench_cli::finish
  // errors when the armed index exceeds every sweep the process ran).
  obs::trace_capture().note_sweep_total(total);
  const std::size_t count = indices.size();
  SweepStats stats;
  // Never spin up more workers than there are trials.
  stats.jobs = static_cast<int>(
      std::min<std::size_t>(static_cast<std::size_t>(jobs_), std::max<std::size_t>(count, 1)));
  if (count == 0) return stats;
  // Distinct slots per subset position: workers write samples racelessly.
  stats.samples_ms.assign(count, 0.0);
  // One utilization slot per worker, written only by its owner.
  stats.workers.assign(static_cast<std::size_t>(stats.jobs), WorkerUtil{});

  // Workers fork per-trial seeds from this shared root; trial_seed is a
  // pure function of (root, index), so the derivation is identical no
  // matter which worker claims the trial.
  const std::uint64_t root_seed = resolve_root_seed(options_);

  const std::size_t chunk =
      options_.chunk > 0
          ? options_.chunk
          : std::clamp<std::size_t>(count / (8 * static_cast<std::size_t>(stats.jobs)),
                                    std::size_t{1}, std::size_t{64});

  // Work distribution: the subset positions [0, count) are partitioned
  // into one contiguous block per worker, each behind a Chase-Lev-style
  // two-ended queue. A worker drains its own block front-to-back (so
  // jobs=1 is exact submission order — the reference the parallel path
  // must reproduce), and once empty steals single trials from the BACK
  // of its peers' blocks. Skewed trial costs (Table II's per-device
  // binary searches) therefore no longer serialize behind a slow chunk:
  // the deterministic seed derivation makes results independent of which
  // worker runs a trial, so stealing changes wall-clock only.
  const auto nq = static_cast<std::size_t>(stats.jobs);
  std::vector<StealQueue> queues(nq);
  for (std::size_t w = 0; w < nq; ++w) {
    queues[w].assign(static_cast<std::uint32_t>(w * count / nq),
                     static_cast<std::uint32_t>((w + 1) * count / nq));
  }

  std::atomic<std::size_t> done{0};
  std::atomic<std::size_t> failed{0};
  std::atomic<int> busy{0};
  std::mutex merge_mu;  // guards stats/errors merge and progress calls

  const auto sweep_start = Clock::now();
  auto worker = [&](std::size_t self) {
    metrics::RunningStats local_ms;
    std::vector<TrialError> local_errors;
    WorkerUtil& util = stats.workers[self];
    const auto worker_start = Clock::now();
    busy.fetch_add(1, std::memory_order_relaxed);
    for (;;) {
      std::uint32_t slot = 0;
      bool got = queues[self].pop_front(&slot);
      bool stolen = false;
      // Own block drained: steal from the back of the other workers'
      // blocks, scanning from the next peer so thieves spread out.
      for (std::size_t v = 1; !got && v < nq; ++v) {
        got = queues[(self + v) % nq].steal_back(&slot);
        stolen = got;
      }
      if (!got) break;
      const std::size_t i = indices[slot];  // original submission index
      TrialContext ctx;
      ctx.index = i;
      ctx.seed = trial_seed(root_seed, i);
      const auto trial_start = Clock::now();
      try {
        // Mark the thread with the trial index so an armed TraceCapture
        // can claim the representative trial's first World.
        obs::TraceCapture::TrialScope scope{i};
        body(ctx);
      } catch (const std::exception& e) {
        local_errors.push_back({i, ctx.seed, e.what()});
        failed.fetch_add(1, std::memory_order_relaxed);
      } catch (...) {
        local_errors.push_back({i, ctx.seed, "unknown exception"});
        failed.fetch_add(1, std::memory_order_relaxed);
      }
      const double elapsed = ms_between(trial_start, Clock::now());
      local_ms.add(elapsed);
      stats.samples_ms[slot] = elapsed;
      ++util.trials;
      if (stolen) ++util.stolen;
      util.busy_ms += elapsed;
      const std::size_t completed = done.fetch_add(1, std::memory_order_relaxed) + 1;
      // Progress cadence matches the old chunked runner: every `chunk`
      // completions and at the end, not after every trial.
      if (options_.progress && (completed % chunk == 0 || completed == count)) {
        std::lock_guard<std::mutex> lock{merge_mu};
        Progress p;
        p.done = completed;
        p.total = count;
        p.errors = failed.load(std::memory_order_relaxed);
        p.workers_busy = busy.load(std::memory_order_relaxed);
        p.jobs = stats.jobs;
        options_.progress(p);
      }
    }
    busy.fetch_sub(1, std::memory_order_relaxed);
    util.wait_ms = std::max(0.0, ms_between(worker_start, Clock::now()) - util.busy_ms);
    std::lock_guard<std::mutex> lock{merge_mu};
    stats.trial_ms.merge(local_ms);
    if (errors) {
      errors->insert(errors->end(), local_errors.begin(), local_errors.end());
    }
  };

  if (stats.jobs == 1) {
    worker(0);
  } else {
    std::vector<std::thread> pool;
    pool.reserve(static_cast<std::size_t>(stats.jobs));
    for (int j = 0; j < stats.jobs; ++j) pool.emplace_back(worker, static_cast<std::size_t>(j));
    for (auto& t : pool) t.join();
  }
  stats.wall_ms = ms_between(sweep_start, Clock::now());

  if (errors) {
    std::sort(errors->begin(), errors->end(),
              [](const TrialError& a, const TrialError& b) { return a.index < b.index; });
  }
  return stats;
}

}  // namespace animus::runner
