#include "runner/checkpoint.hpp"

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <fstream>

#include "obs/metrics.hpp"

namespace animus::runner {
namespace {

std::string header_line(const CheckpointHeader& h) {
  std::string out = "{\"kind\":\"header\",\"version\":" + std::to_string(h.version);
  out += ",\"label\":\"";
  obs::append_json_escaped(out, h.label);
  out += "\",\"total\":" + std::to_string(h.total);
  out += ",\"root_seed\":" + std::to_string(h.root_seed);
  out += std::string(",\"deterministic\":") + (h.deterministic ? "true" : "false");
  out += "}\n";
  return out;
}

/// Pull the raw token after `"key":` out of one JSONL line.
std::optional<std::string> raw_value(std::string_view line, std::string_view key) {
  const std::string needle = "\"" + std::string(key) + "\":";
  auto pos = line.find(needle);
  if (pos == std::string_view::npos) return std::nullopt;
  pos += needle.size();
  if (pos >= line.size()) return std::nullopt;
  if (line[pos] == '"') {
    std::string out;
    for (++pos; pos < line.size() && line[pos] != '"'; ++pos) {
      if (line[pos] == '\\' && pos + 1 < line.size()) {
        ++pos;
        out += line[pos] == 'n' ? '\n' : line[pos] == 't' ? '\t' : line[pos];
      } else {
        out += line[pos];
      }
    }
    if (pos >= line.size()) return std::nullopt;  // unterminated (torn line)
    return out;
  }
  std::string out;
  while (pos < line.size() && line[pos] != ',' && line[pos] != '}') out += line[pos++];
  if (pos >= line.size()) return std::nullopt;  // torn before the delimiter
  return out;
}

void sort_dedup(std::vector<CheckpointData::Trial>* trials) {
  // Sort by index; on duplicates (a re-run overlapping an earlier file)
  // the later write wins. stable_sort keeps file order within an index.
  std::stable_sort(trials->begin(), trials->end(),
                   [](const auto& a, const auto& b) { return a.index < b.index; });
  std::vector<CheckpointData::Trial> dedup;
  dedup.reserve(trials->size());
  for (auto& t : *trials) {
    if (!dedup.empty() && dedup.back().index == t.index) {
      dedup.back() = std::move(t);
    } else {
      dedup.push_back(std::move(t));
    }
  }
  *trials = std::move(dedup);
}

}  // namespace

CheckpointWriter::CheckpointWriter(std::string path, const CheckpointHeader& header,
                                   std::size_t flush_interval, Mode mode)
    : path_(std::move(path)), flush_interval_(std::max<std::size_t>(flush_interval, 1)) {
  file_ = std::fopen(path_.c_str(), mode == Mode::kTruncate ? "wb" : "ab");
  if (file_ == nullptr) return;
  ok_ = true;
  if (mode != Mode::kAppend) {
    const std::string line = header_line(header);
    if (std::fwrite(line.data(), 1, line.size(), file_) != line.size()) ok_ = false;
    std::fflush(file_);
  }
}

CheckpointWriter::~CheckpointWriter() { close(); }

bool CheckpointWriter::ok() const {
  std::lock_guard<std::mutex> lock{mu_};
  return ok_;
}

void CheckpointWriter::append(std::size_t index, std::uint64_t seed,
                              std::string_view encoded_result) {
  std::lock_guard<std::mutex> lock{mu_};
  if (file_ == nullptr) return;
  std::string line = "{\"kind\":\"trial\",\"index\":" + std::to_string(index);
  line += ",\"seed\":" + std::to_string(seed);
  line += ",\"result\":\"";
  obs::append_json_escaped(line, encoded_result);
  line += "\"}\n";
  if (std::fwrite(line.data(), 1, line.size(), file_) != line.size()) ok_ = false;
  ++appended_;
  if (++since_flush_ >= flush_interval_) {
    std::fflush(file_);
    since_flush_ = 0;
  }
}

void CheckpointWriter::close() {
  std::lock_guard<std::mutex> lock{mu_};
  if (file_ == nullptr) return;
  if (std::fflush(file_) != 0 || std::fclose(file_) != 0) ok_ = false;
  file_ = nullptr;
}

std::size_t CheckpointWriter::appended() const {
  std::lock_guard<std::mutex> lock{mu_};
  return appended_;
}

const CheckpointData::Section* CheckpointData::section(std::string_view label) const {
  for (const auto& s : sections) {
    if (s.header.label == label) return &s;
  }
  // Label is informational for single-sweep files: an unmatched needle
  // still resumes when there is no ambiguity about which sweep it is.
  if (sections.size() == 1) return &sections.front();
  return nullptr;
}

std::optional<CheckpointData> load_checkpoint(const std::string& path, std::string* error) {
  std::ifstream in(path);
  if (!in) {
    if (error) *error = "cannot open checkpoint '" + path + "': " + std::strerror(errno);
    return std::nullopt;
  }
  CheckpointData data;
  CheckpointData::Section* current = nullptr;
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty()) continue;
    const auto kind = raw_value(line, "kind");
    if (!kind) {
      // A line without a parsable kind is only acceptable as the torn
      // final line a kill leaves behind.
      if (in.peek() == std::ifstream::traits_type::eof()) break;
      if (error) *error = "malformed line " + std::to_string(lineno) + " in '" + path + "'";
      return std::nullopt;
    }
    if (*kind == "header") {
      CheckpointHeader h;
      h.version = static_cast<int>(
          std::strtol(raw_value(line, "version").value_or("1").c_str(), nullptr, 10));
      h.label = raw_value(line, "label").value_or("");
      h.total = std::strtoull(raw_value(line, "total").value_or("0").c_str(), nullptr, 10);
      h.root_seed =
          std::strtoull(raw_value(line, "root_seed").value_or("0").c_str(), nullptr, 10);
      h.deterministic = raw_value(line, "deterministic").value_or("true") == "true";
      data.last_header_label = h.label;
      // A repeated label re-opens its section (an in-place resume
      // appends a fresh header before continuing a sweep).
      current = nullptr;
      for (auto& s : data.sections) {
        if (s.header.label == h.label) current = &s;
      }
      if (current == nullptr) {
        data.sections.push_back({std::move(h), {}});
        current = &data.sections.back();
      }
      continue;
    }
    if (*kind != "trial") continue;  // forward compatibility: skip unknown kinds
    const auto index = raw_value(line, "index");
    const auto seed = raw_value(line, "seed");
    const auto result = raw_value(line, "result");
    if (!index || !seed || !result) {
      if (in.peek() == std::ifstream::traits_type::eof()) break;  // torn final line
      if (error) *error = "malformed trial at line " + std::to_string(lineno);
      return std::nullopt;
    }
    if (current == nullptr) {
      if (error) *error = "trial before any header at line " + std::to_string(lineno);
      return std::nullopt;
    }
    CheckpointData::Trial t;
    t.index = std::strtoull(index->c_str(), nullptr, 10);
    t.seed = std::strtoull(seed->c_str(), nullptr, 10);
    t.result = *result;
    current->trials.push_back(std::move(t));
  }
  if (data.sections.empty()) {
    if (error) *error = "checkpoint '" + path + "' has no header line";
    return std::nullopt;
  }
  for (auto& s : data.sections) sort_dedup(&s.trials);
  if (error) error->clear();
  return data;
}

std::string checkpoint_mismatch(const CheckpointData::Section& section,
                                const CheckpointHeader& expect) {
  const CheckpointHeader& h = section.header;
  if (h.root_seed != expect.root_seed) {
    return "root seed mismatch (checkpoint " + std::to_string(h.root_seed) + ", run " +
           std::to_string(expect.root_seed) + ")";
  }
  if (h.total != expect.total) {
    return "trial count mismatch (checkpoint " + std::to_string(h.total) + ", run " +
           std::to_string(expect.total) + ")";
  }
  if (h.deterministic != expect.deterministic) {
    return std::string("determinism mode mismatch (checkpoint ") +
           (h.deterministic ? "deterministic" : "live") + ", run " +
           (expect.deterministic ? "deterministic" : "live") + ")";
  }
  for (const auto& t : section.trials) {
    if (t.index >= expect.total) {
      return "trial index " + std::to_string(t.index) + " out of range for total " +
             std::to_string(expect.total);
    }
  }
  return "";
}

}  // namespace animus::runner
