#include "runner/bench_cli.hpp"

#include <cstdio>
#include <cstdlib>
#include <string_view>

namespace animus::runner {
namespace {

[[noreturn]] void usage(const char* argv0, int exit_code) {
  std::FILE* out = exit_code == 0 ? stdout : stderr;
  std::fprintf(out,
               "usage: %s [--jobs N] [--seed S] [--csv]\n"
               "  --jobs N   worker threads (0 = all hardware cores; default 0)\n"
               "  --seed S   root seed for the deterministic trial sweep\n"
               "  --csv      emit tables as CSV and suppress commentary\n"
               "Tables print on stdout; timing goes to stderr, so output is\n"
               "byte-identical at any --jobs value.\n",
               argv0);
  std::exit(exit_code);
}

}  // namespace

BenchArgs BenchArgs::parse(int argc, char** argv) {
  BenchArgs args;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    const auto value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s: missing value for %s\n", argv[0], flag);
        usage(argv[0], 2);
      }
      return argv[++i];
    };
    if (arg == "--jobs" || arg == "-j") {
      args.run.jobs = std::atoi(value("--jobs"));
    } else if (arg == "--seed" || arg == "-s") {
      args.run.root_seed = std::strtoull(value("--seed"), nullptr, 0);
    } else if (arg == "--csv") {
      args.csv = true;
    } else if (arg == "--help" || arg == "-h") {
      usage(argv[0], 0);
    } else {
      std::fprintf(stderr, "%s: unknown argument '%s'\n", argv[0], argv[i]);
      usage(argv[0], 2);
    }
  }
  return args;
}

void emit(const metrics::Table& table, const BenchArgs& args) {
  std::fputs(args.csv ? table.to_csv().c_str() : table.to_string().c_str(), stdout);
}

void note(const BenchArgs& args, const char* line) {
  if (!args.csv) std::puts(line);
}

void report(const char* label, const SweepStats& stats, const std::vector<TrialError>& errors) {
  std::fprintf(stderr, "[%s] %s\n", label, stats.to_string().c_str());
  for (const auto& e : errors) {
    std::fprintf(stderr, "[%s] trial %zu (seed %llu) failed: %s\n", label, e.index,
                 static_cast<unsigned long long>(e.seed), e.what.c_str());
  }
}

}  // namespace animus::runner
