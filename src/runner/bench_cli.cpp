#include "runner/bench_cli.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string_view>
#include <unordered_set>

#include "core/attack_scenario.hpp"
#include "obs/manifest.hpp"
#include "obs/metrics.hpp"
#include "obs/profile.hpp"
#include "obs/stream.hpp"
#include "obs/trace_capture.hpp"
#include "sim/chrome_trace.hpp"

namespace animus::runner {
namespace {

using Clock = std::chrono::steady_clock;

// Process-wide campaign state shared between parse(), the heartbeat,
// run_campaign and finish(). Bench binaries parse exactly once.
struct CampaignState {
  std::string bench_name;               // argv[0] basename
  std::vector<std::string> argv_tail;   // argv[1..]
  std::unique_ptr<obs::TelemetryStreamer> streamer;
  bool trace_trial_explicit = false;
  // Heartbeat bookkeeping (callbacks are serialized by the runner).
  Clock::time_point sweep_start{};
  Clock::time_point last_beat{};
  std::size_t prev_done = 0;
  double beat_period_ms = 1000.0;
  bool heartbeat = false;
  // Manifest accounting.
  std::size_t trials_total = 0;
  std::size_t trials_resumed = 0;
  std::size_t trial_errors = 0;
  std::size_t errors_injected = 0;
  std::size_t errors_organic = 0;
  std::string backend_name = "threads";
  int backend_parallelism = 0;
  // Checkpoint paths this process already opened: a later campaign in
  // the same bench appends its section instead of truncating the file.
  std::unordered_set<std::string> checkpoints_opened;
  // --trials-out accumulator: one CSV block per campaign, in run order.
  std::string trials_csv;
};

CampaignState& state() {
  static CampaignState* s = new CampaignState();  // never destroyed
  return *s;
}

[[noreturn]] void usage(const char* argv0, int exit_code) {
  std::FILE* out = exit_code == 0 ? stdout : stderr;
  std::fprintf(
      out,
      "usage: %s [--jobs N] [--seed S] [--backend NAME] [--shards N] [--batch N|auto]\n"
      "          [--tier NAME] [--scenario NAME] [--list-scenarios]\n"
      "          [--inject-fault RATE] [--csv] [--trials-out FILE]\n"
      "          [--trace-out FILE] [--trace-trial N] [--profile-out FILE]\n"
      "          [--metrics-out FILE]\n"
      "          [--stream-out FILE] [--stream-interval MS] [--stream-full]\n"
      "          [--progress]\n"
      "          [--checkpoint-out FILE] [--checkpoint-interval N]\n"
      "          [--resume-from FILE] [--manifest FILE]\n"
      "  --jobs N              worker threads (0 = all hardware cores; default 0)\n"
      "  --seed S              root seed for the deterministic trial sweep\n"
      "  --backend NAME        campaign execution backend: threads (default)\n"
      "                        or process (forked shard workers; a crashed\n"
      "                        worker costs one trial, not the sweep)\n"
      "  --shards N            worker processes for --backend=process\n"
      "                        (0 = all hardware cores)\n"
      "  --batch N|auto        trials per command frame for --backend=process\n"
      "                        (auto = size frames from measured trial cost;\n"
      "                        1 = one-trial-in-flight compatibility mode;\n"
      "                        results are byte-identical at any value)\n"
      "  --tier NAME           trial tier: auto (default; analytic fast path\n"
      "                        when eligible), sim, or analytic (ineligible\n"
      "                        trials fall back to sim)\n"
      "  --scenario NAME       restrict a registry-driven bench to one attack\n"
      "                        scenario; unknown names exit 2 with the list\n"
      "  --list-scenarios      print the registered attack scenarios and exit\n"
      "  --inject-fault RATE   deterministically fail ~RATE of campaign trials\n"
      "                        (seed-derived; injected vs organic error counts\n"
      "                        are recorded in the run manifest)\n"
      "  --csv                 emit tables as CSV and suppress commentary\n"
      "  --trials-out FILE     per-trial CSV, columns derived from the field\n"
      "                        codec (label,index + one column per field)\n"
      "  --trace-out FILE      Chrome/Perfetto JSON trace of one trial\n"
      "  --trace-trial N       capture submission index N (default 0); exits 2\n"
      "                        when N is out of range for every sweep\n"
      "  --profile-out FILE    aggregate every span from every trial into a\n"
      "                        deterministic JSON profile (byte-identical at\n"
      "                        any --jobs/--backend/--shards); top self-time\n"
      "                        table + worker utilization go to stderr\n"
      "  --metrics-out FILE    metrics snapshot (.prom => Prometheus, else JSONL)\n"
      "  --stream-out FILE     streaming telemetry JSONL (metrics + progress,\n"
      "                        appended live every --stream-interval)\n"
      "  --stream-interval MS  stream flush / heartbeat period (default 1000);\n"
      "                        below 1000 metrics samples are delta-encoded\n"
      "                        (changed series only + periodic keyframes)\n"
      "  --stream-full         full metrics samples at any interval\n"
      "  --progress            progress heartbeat on stderr without a stream\n"
      "  --checkpoint-out FILE persist completed trials for resume\n"
      "  --checkpoint-interval N  trials between checkpoint flushes (default 64)\n"
      "  --resume-from FILE    re-run only trials the checkpoint is missing\n"
      "  --manifest FILE       run manifest (default: next to first artifact)\n"
      "Tables print on stdout; timing and telemetry go to stderr, so\n"
      "output is byte-identical at any --jobs/--backend/--shards value.\n",
      argv0);
  std::exit(exit_code);
}

bool write_file(const std::string& path, const std::string& body) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  const std::size_t n = std::fwrite(body.data(), 1, body.size(), f);
  const bool ok = n == body.size() && std::fclose(f) == 0;
  if (n != body.size()) std::fclose(f);
  return ok;
}

bool ends_with(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() && s.substr(s.size() - suffix.size()) == suffix;
}

std::string basename_of(std::string_view path) {
  const auto slash = path.find_last_of('/');
  return std::string(slash == std::string_view::npos ? path : path.substr(slash + 1));
}

/// Heartbeat installed into RunOptions::progress when --progress or
/// --stream-out is active: throughput, completion %, ETA from the
/// elapsed per-trial wall-clock, and the running error count — to
/// stderr and (when streaming) to the telemetry stream.
void heartbeat(const Progress& p) {
  CampaignState& s = state();
  const auto now = Clock::now();
  if (p.done < s.prev_done || s.prev_done == 0) s.sweep_start = now;  // new sweep
  s.prev_done = p.done;
  const bool final = p.done >= p.total;
  const double since_beat_ms =
      std::chrono::duration<double, std::milli>(now - s.last_beat).count();
  if (!final && since_beat_ms < s.beat_period_ms) return;
  s.last_beat = now;

  const double elapsed_s =
      std::chrono::duration<double>(now - s.sweep_start).count();
  const double rate = elapsed_s > 0.0 ? static_cast<double>(p.done) / elapsed_s : 0.0;
  const double remaining = static_cast<double>(p.total - p.done);
  const double eta_s = rate > 0.0 ? remaining / rate : 0.0;
  const double pct = p.total > 0 ? 100.0 * static_cast<double>(p.done) /
                                       static_cast<double>(p.total)
                                 : 100.0;
  if (s.heartbeat) {
    std::fprintf(stderr,
                 "[progress] %s %zu/%zu (%.1f%%)  %.1f trials/s  eta %.1fs  errors %zu\n",
                 s.bench_name.c_str(), p.done, p.total, pct, rate, eta_s, p.errors);
  }
  if (s.streamer) {
    char fields[256];
    std::snprintf(fields, sizeof(fields),
                  "\"done\":%zu,\"total\":%zu,\"pct\":%.3f,\"trials_per_s\":%.3f,"
                  "\"eta_s\":%.3f,\"errors\":%zu,\"workers_busy\":%d,\"jobs\":%d",
                  p.done, p.total, pct, rate, eta_s, p.errors, p.workers_busy, p.jobs);
    s.streamer->emit("progress", fields);
  }
}

}  // namespace

bool stream_delta_enabled(const BenchArgs& args) {
  return !args.stream_out.empty() && !args.stream_full && args.stream_interval_ms < 1000.0;
}

bool fault_scheduled(std::uint64_t root_seed, double rate, std::size_t index) {
  if (rate <= 0.0) return false;
  if (rate >= 1.0) return true;
  // A dedicated substream: independent of the per-trial seeds (which
  // feed the World), so injecting faults never perturbs the results of
  // the trials that survive.
  return sim::Rng{root_seed}.fork("inject-fault").fork(index).uniform01() < rate;
}

BenchArgs BenchArgs::parse(int argc, char** argv) {
  BenchArgs args;
  CampaignState& s = state();
  s.bench_name = argc > 0 ? basename_of(argv[0]) : "bench";
  for (int i = 1; i < argc; ++i) s.argv_tail.emplace_back(argv[i]);
  for (int i = 1; i < argc; ++i) {
    std::string_view arg = argv[i];
    // Accept both `--flag value` and `--flag=value`.
    std::string inline_value;
    bool has_inline = false;
    if (const auto eq = arg.find('='); eq != std::string_view::npos && arg.rfind("--", 0) == 0) {
      inline_value = std::string(arg.substr(eq + 1));
      arg = arg.substr(0, eq);
      has_inline = true;
    }
    const auto value = [&](const char* flag) -> std::string {
      if (has_inline) return inline_value;
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s: missing value for %s\n", argv[0], flag);
        usage(argv[0], 2);
      }
      return argv[++i];
    };
    if (arg == "--jobs" || arg == "-j") {
      args.run.jobs = std::atoi(value("--jobs").c_str());
    } else if (arg == "--seed" || arg == "-s") {
      args.run.root_seed = std::strtoull(value("--seed").c_str(), nullptr, 0);
    } else if (arg == "--backend") {
      args.backend = value("--backend");
      std::string error;
      if (make_backend(args.backend, {}, 1, &error) == nullptr) {
        std::fprintf(stderr, "%s: %s\n", argv[0], error.c_str());
        usage(argv[0], 2);
      }
    } else if (arg == "--shards") {
      args.shards = std::atoi(value("--shards").c_str());
    } else if (arg == "--batch") {
      const std::string v = value("--batch");
      if (v == "auto") {
        args.batch = 0;
      } else {
        args.batch = std::atoi(v.c_str());
        if (args.batch < 1 || args.batch > ProcessShardBackend::kMaxBatch) {
          std::fprintf(stderr, "%s: --batch must be 'auto' or an integer in [1, %d]\n",
                       argv[0], ProcessShardBackend::kMaxBatch);
          usage(argv[0], 2);
        }
      }
    } else if (arg == "--tier") {
      args.tier = value("--tier");
      if (args.tier != "auto" && args.tier != "sim" && args.tier != "analytic") {
        std::fprintf(stderr, "%s: --tier must be auto, sim or analytic\n", argv[0]);
        usage(argv[0], 2);
      }
    } else if (arg == "--scenario") {
      args.scenario = value("--scenario");
      if (core::find_scenario(args.scenario) == nullptr) {
        std::fprintf(stderr, "%s: unknown scenario '%s'; registered scenarios:\n%s", argv[0],
                     args.scenario.c_str(), core::scenario_listing().c_str());
        std::exit(2);
      }
    } else if (arg == "--list-scenarios") {
      std::fputs(core::scenario_listing().c_str(), stdout);
      std::exit(0);
    } else if (arg == "--inject-fault") {
      args.inject_fault = std::strtod(value("--inject-fault").c_str(), nullptr);
      if (args.inject_fault < 0.0 || args.inject_fault > 1.0) {
        std::fprintf(stderr, "%s: --inject-fault must be in [0, 1]\n", argv[0]);
        usage(argv[0], 2);
      }
    } else if (arg == "--csv") {
      args.csv = true;
    } else if (arg == "--trials-out") {
      args.trials_out = value("--trials-out");
    } else if (arg == "--trace-out") {
      args.trace_out = value("--trace-out");
    } else if (arg == "--trace-trial") {
      args.trace_trial = std::strtoull(value("--trace-trial").c_str(), nullptr, 0);
      s.trace_trial_explicit = true;
    } else if (arg == "--profile-out") {
      args.profile_out = value("--profile-out");
    } else if (arg == "--metrics-out") {
      args.metrics_out = value("--metrics-out");
    } else if (arg == "--stream-out") {
      args.stream_out = value("--stream-out");
    } else if (arg == "--stream-interval") {
      args.stream_interval_ms = std::strtod(value("--stream-interval").c_str(), nullptr);
      if (args.stream_interval_ms <= 0.0) {
        std::fprintf(stderr, "%s: --stream-interval must be positive\n", argv[0]);
        usage(argv[0], 2);
      }
    } else if (arg == "--stream-full") {
      args.stream_full = true;
    } else if (arg == "--progress") {
      args.progress = true;
    } else if (arg == "--checkpoint-out") {
      args.checkpoint_out = value("--checkpoint-out");
    } else if (arg == "--checkpoint-interval") {
      args.checkpoint_interval = std::strtoull(value("--checkpoint-interval").c_str(),
                                               nullptr, 0);
      if (args.checkpoint_interval == 0) args.checkpoint_interval = 1;
    } else if (arg == "--resume-from") {
      args.resume_from = value("--resume-from");
    } else if (arg == "--manifest") {
      args.manifest_out = value("--manifest");
    } else if (arg == "--help" || arg == "-h") {
      usage(argv[0], 0);
    } else {
      std::fprintf(stderr, "%s: unknown argument '%s'\n", argv[0], argv[i]);
      usage(argv[0], 2);
    }
  }
  if (!args.trace_out.empty()) {
    // Works under every backend: thread workers claim the capture
    // directly; forked shard workers inherit the armed state and ship
    // the captured trace back over the result pipe ("T" message).
    obs::trace_capture().arm(args.trace_trial);
  } else if (s.trace_trial_explicit) {
    std::fprintf(stderr, "%s: --trace-trial has no effect without --trace-out\n", argv[0]);
  }
  if (!args.profile_out.empty()) {
    // Enabled before any trial runs so every span is counted. Forked
    // shard workers inherit the enabled flag, reset their inherited
    // counts, and ship their delta back over the result pipe ("P"
    // message) — the parent's merge is commutative, so the final
    // profile is byte-identical to a threads-backend run.
    obs::span_profiler().enable();
    obs::span_profiler().reset();
  }
  if (!args.stream_out.empty()) {
    obs::StreamOptions so;
    so.path = args.stream_out;
    so.interval_ms = args.stream_interval_ms;
    s.streamer = std::make_unique<obs::TelemetryStreamer>(so);
    if (stream_delta_enabled(args)) {
      // Sub-second ticks would pay the full-snapshot encode many times
      // per second; switch the metrics sampler to delta encoding. The
      // sampler is only ever polled from the flusher thread (and once
      // more at stop()), so the encoder needs no locking of its own.
      auto encoder = std::make_shared<obs::DeltaEncoder>();
      s.streamer->add_sampler("metrics", [encoder] {
        return encoder->encode(obs::global_registry().snapshot());
      });
    } else {
      s.streamer->add_sampler("metrics", [] {
        return obs::stream_fields(obs::global_registry().snapshot());
      });
    }
    if (!s.streamer->start()) {
      std::fprintf(stderr, "%s: cannot open --stream-out %s\n", argv[0],
                   args.stream_out.c_str());
      std::exit(2);
    }
  }
  s.heartbeat = args.progress;
  s.beat_period_ms = args.stream_interval_ms;
  if (args.progress || !args.stream_out.empty()) {
    args.run.progress = heartbeat;
  }
  return args;
}

void emit(const metrics::Table& table, const BenchArgs& args) {
  std::fputs(args.csv ? table.to_csv().c_str() : table.to_string().c_str(), stdout);
}

void note(const BenchArgs& args, const char* line) {
  if (!args.csv) std::puts(line);
}

void report(const char* label, const SweepStats& stats, const std::vector<TrialError>& errors) {
  std::fprintf(stderr, "[%s] %s\n", label, stats.to_string().c_str());
  // Per-worker utilization timelines ride with --profile-out: wall-clock
  // (which worker ran/stole what varies run to run), so stderr only —
  // never part of the deterministic profile JSON.
  if (obs::span_profiler().enabled() && !stats.workers.empty()) {
    std::fputs(stats.worker_lines().c_str(), stderr);
  }
  // Same rule for the batched-dispatch accounting: frame sizes under
  // --batch=auto depend on measured trial cost, so stderr only.
  if (obs::span_profiler().enabled() && stats.dispatch.frames > 0) {
    std::fprintf(stderr, "[%s] %s\n", label, stats.dispatch_line().c_str());
  }
  if (!stats.samples_ms.empty()) {
    std::fprintf(stderr, "[%s] %s\n", label, stats.latency_line().c_str());
    auto& hist = obs::global_registry().histogram("animus_trial_latency_ms",
                                                  obs::default_latency_buckets_ms(),
                                                  {{"bench", label}});
    for (const double ms : stats.samples_ms) hist.observe(ms);
  }
  for (const auto& e : errors) {
    std::fprintf(stderr, "[%s] trial %zu (seed %llu) failed: %s\n", label, e.index,
                 static_cast<unsigned long long>(e.seed), e.what.c_str());
  }
}

namespace detail {

CampaignPlan prepare_campaign(const char* label, std::size_t total, const BenchArgs& args) {
  CampaignPlan plan;
  CheckpointHeader header;
  header.label = label;
  header.total = total;
  header.root_seed = args.run.root_seed;
  header.deterministic = args.run.deterministic;

  std::string last_header_label;  // of the resumed file, when in place
  if (!args.resume_from.empty()) {
    std::string error;
    auto data = load_checkpoint(args.resume_from, &error);
    if (!data) {
      std::fprintf(stderr, "[%s] --resume-from: %s\n", label, error.c_str());
      std::exit(2);
    }
    const CheckpointData::Section* section = data->section(label);
    if (section == nullptr) {
      std::fprintf(stderr, "[%s] --resume-from %s: no checkpoint section for label '%s'\n",
                   label, args.resume_from.c_str(), label);
      std::exit(2);
    }
    const std::string mismatch = checkpoint_mismatch(*section, header);
    if (!mismatch.empty()) {
      std::fprintf(stderr, "[%s] --resume-from %s: %s\n", label, args.resume_from.c_str(),
                   mismatch.c_str());
      std::exit(2);
    }
    plan.resumed = section->trials;
    last_header_label = data->last_header_label;
  }

  std::unordered_set<std::size_t> have;
  have.reserve(plan.resumed.size());
  for (const auto& t : plan.resumed) have.insert(t.index);
  plan.missing.reserve(total - plan.resumed.size());
  for (std::size_t i = 0; i < total; ++i) {
    if (have.find(i) == have.end()) plan.missing.push_back(i);
  }

  CampaignState& s = state();
  if (!args.checkpoint_out.empty()) {
    // Mode selection: continuing the resumed file in place appends (and
    // skips even the header when our section is already the file's
    // open tail); a path this process already wrote gets an additional
    // section; a fresh path is truncated and seeded with a re-append of
    // every resumed trial, so the new file is itself complete.
    const bool in_place = args.checkpoint_out == args.resume_from;
    const bool reopened = s.checkpoints_opened.count(args.checkpoint_out) > 0;
    CheckpointWriter::Mode mode = CheckpointWriter::Mode::kTruncate;
    if (in_place) {
      mode = (!reopened && last_header_label == label) ? CheckpointWriter::Mode::kAppend
                                                       : CheckpointWriter::Mode::kAppendHeader;
    } else if (reopened) {
      mode = CheckpointWriter::Mode::kAppendHeader;
    }
    plan.writer = std::make_shared<CheckpointWriter>(args.checkpoint_out, header,
                                                     args.checkpoint_interval, mode);
    if (!plan.writer->ok()) {
      std::fprintf(stderr, "[%s] cannot open --checkpoint-out %s\n", label,
                   args.checkpoint_out.c_str());
      std::exit(2);
    }
    s.checkpoints_opened.insert(args.checkpoint_out);
    if (!in_place) {
      for (const auto& t : plan.resumed) plan.writer->append(t.index, t.seed, t.result);
    }
  }

  std::string backend_error;
  plan.backend =
      make_backend(args.backend, args.run, args.shards, args.batch, &backend_error);
  if (plan.backend == nullptr) {
    std::fprintf(stderr, "[%s] --backend: %s\n", label, backend_error.c_str());
    std::exit(2);
  }
  s.backend_name = plan.backend->name();
  s.backend_parallelism = plan.backend->parallelism();

  if (auto* streamer = s.streamer.get()) {
    char fields[256];
    std::snprintf(fields, sizeof(fields),
                  "\"label\":\"%s\",\"total\":%zu,\"resumed\":%zu,\"to_run\":%zu,"
                  "\"backend\":\"%s\"",
                  label, total, plan.resumed.size(), plan.missing.size(),
                  plan.backend->name());
    streamer->emit("campaign_start", fields);
  }
  return plan;
}

void finish_campaign(const char* label, const CampaignPlan& plan, const SweepStats& stats,
                     const std::vector<TrialError>& errors) {
  report(label, stats, errors);
  CampaignState& s = state();
  const std::size_t total = plan.resumed.size() + plan.missing.size();
  s.trials_total += total;
  s.trials_resumed += plan.resumed.size();
  s.trial_errors += errors.size();
  std::size_t injected = 0;
  for (const auto& e : errors) injected += e.what == kInjectedFaultWhat ? 1 : 0;
  s.errors_injected += injected;
  s.errors_organic += errors.size() - injected;
  if (injected > 0) {
    std::fprintf(stderr, "[%s] %zu of %zu errors were injected (--inject-fault)\n", label,
                 injected, errors.size());
  }
  if (!plan.resumed.empty()) {
    std::fprintf(stderr, "[%s] resumed %zu/%zu trials from checkpoint; re-ran %zu\n", label,
                 plan.resumed.size(), total, plan.missing.size());
  }
  if (plan.writer) {
    if (plan.writer->ok()) {
      std::fprintf(stderr, "[%s] checkpoint written to %s (%zu trials)\n", label,
                   plan.writer->path().c_str(), plan.writer->appended());
    } else {
      std::fprintf(stderr, "[%s] checkpoint write to %s FAILED\n", label,
                   plan.writer->path().c_str());
    }
  }
  if (s.streamer) {
    char fields[192];
    std::snprintf(fields, sizeof(fields),
                  "\"label\":\"%s\",\"total\":%zu,\"errors\":%zu,\"wall_ms\":%.3f", label,
                  total, errors.size(), stats.wall_ms);
    s.streamer->emit("campaign_end", fields);
  }
}

void campaign_decode_failed(const char* label, std::size_t index, const char* source) {
  std::fprintf(stderr, "[%s] %s: cannot decode result of trial %zu\n", label, source, index);
  std::exit(2);
}

void append_trials_csv(std::string&& block) { state().trials_csv += block; }

}  // namespace detail

void finish(const BenchArgs& args) {
  CampaignState& s = state();
  if (!args.trace_out.empty()) {
    auto& capture = obs::trace_capture();
    if (capture.captured()) {
      if (sim::write_chrome_trace(capture.trace(), args.trace_out)) {
        std::fprintf(stderr, "[bench] trace written to %s (%zu records)\n",
                     args.trace_out.c_str(), capture.trace().size());
      } else {
        std::fprintf(stderr, "[bench] failed to write trace to %s\n", args.trace_out.c_str());
      }
    } else if (capture.armed() && args.trace_trial >= capture.max_sweep_total() &&
               capture.max_sweep_total() > 0) {
      std::fprintf(stderr,
                   "[bench] --trace-trial=%zu out of range: the largest sweep ran only "
                   "%zu trials (valid indices are 0..%zu)\n",
                   args.trace_trial, capture.max_sweep_total(),
                   capture.max_sweep_total() - 1);
      std::exit(2);
    } else {
      std::fprintf(stderr, "[bench] --trace-out: no trial trace was captured\n");
    }
  }
  if (!args.profile_out.empty()) {
    const obs::ProfileReport profile = obs::span_profiler().snapshot();
    if (write_file(args.profile_out, obs::to_profile_json(profile))) {
      std::fprintf(stderr, "[bench] span profile written to %s (%zu spans, %zu entries)\n",
                   args.profile_out.c_str(), static_cast<std::size_t>(profile.span_count()),
                   profile.entries.size());
    } else {
      std::fprintf(stderr, "[bench] failed to write span profile to %s\n",
                   args.profile_out.c_str());
    }
    std::fputs(obs::profile_table(profile).c_str(), stderr);
  }
  if (!args.metrics_out.empty()) {
    const obs::Snapshot snap = obs::global_registry().snapshot();
    const std::string body =
        ends_with(args.metrics_out, ".prom") ? snap.to_prometheus() : snap.to_jsonl();
    if (write_file(args.metrics_out, body)) {
      std::fprintf(stderr, "[bench] metrics written to %s (%zu series)\n",
                   args.metrics_out.c_str(), snap.points.size());
    } else {
      std::fprintf(stderr, "[bench] failed to write metrics to %s\n",
                   args.metrics_out.c_str());
    }
  }
  if (!args.trials_out.empty()) {
    if (write_file(args.trials_out, s.trials_csv)) {
      std::fprintf(stderr, "[bench] per-trial CSV written to %s\n", args.trials_out.c_str());
    } else {
      std::fprintf(stderr, "[bench] failed to write per-trial CSV to %s\n",
                   args.trials_out.c_str());
    }
  }
  std::size_t stream_lines = 0;
  std::size_t stream_dropped = 0;
  if (s.streamer) {
    s.streamer->stop();  // clean final flush
    stream_lines = s.streamer->lines_written();
    stream_dropped = s.streamer->dropped();
    std::fprintf(stderr, "[bench] telemetry stream written to %s (%zu lines, %zu dropped)\n",
                 args.stream_out.c_str(), stream_lines, stream_dropped);
  }
  // Run manifest: next to the first file artifact, or wherever
  // --manifest points. Without any artifact there is nothing to
  // describe, so none is written.
  std::string manifest_path = args.manifest_out;
  if (manifest_path.empty()) {
    for (const std::string* artifact :
         {&args.metrics_out, &args.trace_out, &args.profile_out, &args.stream_out,
          &args.checkpoint_out, &args.trials_out}) {
      if (!artifact->empty()) {
        manifest_path = obs::RunManifest::path_for(*artifact);
        break;
      }
    }
  }
  if (!manifest_path.empty()) {
    obs::RunManifest m;
    m.bench = s.bench_name;
    m.scenario = args.scenario;
    m.argv = s.argv_tail;
    m.root_seed = args.run.root_seed;
    m.jobs = args.run.jobs;
    m.backend = s.backend_name;
    m.shards = args.shards;
    m.batch = args.batch;
    m.inject_fault = args.inject_fault;
    m.deterministic = args.run.deterministic;
    m.csv = args.csv;
    m.stream_interval_ms = args.stream_out.empty() ? 0.0 : args.stream_interval_ms;
    m.stream_delta = stream_delta_enabled(args);
    m.checkpoint_interval = args.checkpoint_out.empty() ? 0 : args.checkpoint_interval;
    m.trace_trial = args.trace_trial;
    m.trace_out = args.trace_out;
    m.profile_out = args.profile_out;
    m.metrics_out = args.metrics_out;
    m.stream_out = args.stream_out;
    m.checkpoint_out = args.checkpoint_out;
    m.resume_from = args.resume_from;
    m.trials_total = s.trials_total;
    m.trials_resumed = s.trials_resumed;
    m.trial_errors = s.trial_errors;
    m.errors_injected = s.errors_injected;
    m.errors_organic = s.errors_organic;
    m.stream_lines = stream_lines;
    m.stream_dropped = stream_dropped;
    m.compiler = obs::build_compiler_id();
    m.build_type = obs::build_type_id();
    m.cxx_standard = __cplusplus;
    if (write_file(manifest_path, m.to_json())) {
      std::fprintf(stderr, "[bench] run manifest written to %s\n", manifest_path.c_str());
    } else {
      std::fprintf(stderr, "[bench] failed to write manifest to %s\n", manifest_path.c_str());
    }
  }
}

}  // namespace animus::runner
