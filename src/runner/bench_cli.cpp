#include "runner/bench_cli.hpp"

#include <cstdio>
#include <cstdlib>
#include <string_view>

#include "obs/metrics.hpp"
#include "obs/trace_capture.hpp"
#include "sim/chrome_trace.hpp"

namespace animus::runner {
namespace {

[[noreturn]] void usage(const char* argv0, int exit_code) {
  std::FILE* out = exit_code == 0 ? stdout : stderr;
  std::fprintf(out,
               "usage: %s [--jobs N] [--seed S] [--csv] [--trace-out FILE]"
               " [--metrics-out FILE]\n"
               "  --jobs N            worker threads (0 = all hardware cores; default 0)\n"
               "  --seed S            root seed for the deterministic trial sweep\n"
               "  --csv               emit tables as CSV and suppress commentary\n"
               "  --trace-out FILE    Chrome/Perfetto JSON trace of trial 0\n"
               "  --metrics-out FILE  metrics snapshot (.prom => Prometheus, else JSONL)\n"
               "Tables print on stdout; timing and telemetry go to stderr, so\n"
               "output is byte-identical at any --jobs value.\n",
               argv0);
  std::exit(exit_code);
}

bool write_file(const std::string& path, const std::string& body) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  const std::size_t n = std::fwrite(body.data(), 1, body.size(), f);
  const bool ok = n == body.size() && std::fclose(f) == 0;
  if (n != body.size()) std::fclose(f);
  return ok;
}

bool ends_with(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() && s.substr(s.size() - suffix.size()) == suffix;
}

}  // namespace

BenchArgs BenchArgs::parse(int argc, char** argv) {
  BenchArgs args;
  for (int i = 1; i < argc; ++i) {
    std::string_view arg = argv[i];
    // Accept both `--flag value` and `--flag=value`.
    std::string inline_value;
    bool has_inline = false;
    if (const auto eq = arg.find('='); eq != std::string_view::npos && arg.rfind("--", 0) == 0) {
      inline_value = std::string(arg.substr(eq + 1));
      arg = arg.substr(0, eq);
      has_inline = true;
    }
    const auto value = [&](const char* flag) -> std::string {
      if (has_inline) return inline_value;
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s: missing value for %s\n", argv[0], flag);
        usage(argv[0], 2);
      }
      return argv[++i];
    };
    if (arg == "--jobs" || arg == "-j") {
      args.run.jobs = std::atoi(value("--jobs").c_str());
    } else if (arg == "--seed" || arg == "-s") {
      args.run.root_seed = std::strtoull(value("--seed").c_str(), nullptr, 0);
    } else if (arg == "--csv") {
      args.csv = true;
    } else if (arg == "--trace-out") {
      args.trace_out = value("--trace-out");
    } else if (arg == "--metrics-out") {
      args.metrics_out = value("--metrics-out");
    } else if (arg == "--help" || arg == "-h") {
      usage(argv[0], 0);
    } else {
      std::fprintf(stderr, "%s: unknown argument '%s'\n", argv[0], argv[i]);
      usage(argv[0], 2);
    }
  }
  if (!args.trace_out.empty()) obs::trace_capture().arm(0);
  return args;
}

void emit(const metrics::Table& table, const BenchArgs& args) {
  std::fputs(args.csv ? table.to_csv().c_str() : table.to_string().c_str(), stdout);
}

void note(const BenchArgs& args, const char* line) {
  if (!args.csv) std::puts(line);
}

void report(const char* label, const SweepStats& stats, const std::vector<TrialError>& errors) {
  std::fprintf(stderr, "[%s] %s\n", label, stats.to_string().c_str());
  if (!stats.samples_ms.empty()) {
    std::fprintf(stderr, "[%s] %s\n", label, stats.latency_line().c_str());
    auto& hist = obs::global_registry().histogram("animus_trial_latency_ms",
                                                  obs::default_latency_buckets_ms(),
                                                  {{"bench", label}});
    for (const double ms : stats.samples_ms) hist.observe(ms);
  }
  for (const auto& e : errors) {
    std::fprintf(stderr, "[%s] trial %zu (seed %llu) failed: %s\n", label, e.index,
                 static_cast<unsigned long long>(e.seed), e.what.c_str());
  }
}

void finish(const BenchArgs& args) {
  if (!args.trace_out.empty()) {
    auto& capture = obs::trace_capture();
    if (!capture.captured()) {
      std::fprintf(stderr, "[bench] --trace-out: no trial trace was captured\n");
    } else if (sim::write_chrome_trace(capture.trace(), args.trace_out)) {
      std::fprintf(stderr, "[bench] trace written to %s (%zu records)\n",
                   args.trace_out.c_str(), capture.trace().size());
    } else {
      std::fprintf(stderr, "[bench] failed to write trace to %s\n", args.trace_out.c_str());
    }
  }
  if (!args.metrics_out.empty()) {
    const obs::Snapshot snap = obs::global_registry().snapshot();
    const std::string body =
        ends_with(args.metrics_out, ".prom") ? snap.to_prometheus() : snap.to_jsonl();
    if (write_file(args.metrics_out, body)) {
      std::fprintf(stderr, "[bench] metrics written to %s (%zu series)\n",
                   args.metrics_out.c_str(), snap.points.size());
    } else {
      std::fprintf(stderr, "[bench] failed to write metrics to %s\n",
                   args.metrics_out.c_str());
    }
  }
}

}  // namespace animus::runner
