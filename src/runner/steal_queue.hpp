// Chase-Lev-style work-stealing queue for the parallel runner.
//
// The runner's work is static: every trial index is known before the
// pool starts and nothing is pushed mid-run. That lets the classic
// growable Chase-Lev ring collapse to its essential mechanism — a
// per-worker range of pre-partitioned work claimed from two ends:
//
//   - the owner pops from the FRONT (low indices first, preserving the
//     submission-order locality that makes checkpoint flushes and
//     progress output feel sequential);
//   - idle workers steal from the BACK, so a thief grabs the work the
//     owner would reach last and the two ends only collide on the final
//     item.
//
// Both bounds live in ONE atomic word ({head:32, tail:32}, claimed by
// CAS), so the owner/thief race that the full Chase-Lev algorithm
// resolves with fences cannot lose or duplicate an item: every claim
// moves exactly one bound of the same word. Lock-free, allocation-free,
// and — because trials are coarse (>= tens of microseconds) — contention
// on the word is negligible.
//
// Replaces the fixed-chunk atomic cursor, whose failure mode was
// Table II's skewed per-device binary searches: one slow chunk pinned a
// worker while its siblings idled. With stealing, a worker that drains
// its own range takes single trials from the slowest peer instead.
#pragma once

#include <atomic>
#include <cstdint>

namespace animus::runner {

class StealQueue {
 public:
  StealQueue() = default;

  /// Reset to own the half-open range [begin, end).
  void assign(std::uint32_t begin, std::uint32_t end) {
    range_.store(pack(begin, end), std::memory_order_relaxed);
  }

  /// Owner end: claim the lowest unclaimed position. False when drained.
  bool pop_front(std::uint32_t* out) {
    std::uint64_t r = range_.load(std::memory_order_relaxed);
    for (;;) {
      const std::uint32_t head = unpack_head(r);
      const std::uint32_t tail = unpack_tail(r);
      if (head >= tail) return false;
      if (range_.compare_exchange_weak(r, pack(head + 1, tail), std::memory_order_acq_rel,
                                       std::memory_order_relaxed)) {
        *out = head;
        return true;
      }
    }
  }

  /// Thief end: claim the highest unclaimed position. False when drained.
  bool steal_back(std::uint32_t* out) {
    std::uint64_t r = range_.load(std::memory_order_relaxed);
    for (;;) {
      const std::uint32_t head = unpack_head(r);
      const std::uint32_t tail = unpack_tail(r);
      if (head >= tail) return false;
      if (range_.compare_exchange_weak(r, pack(head, tail - 1), std::memory_order_acq_rel,
                                       std::memory_order_relaxed)) {
        *out = tail - 1;
        return true;
      }
    }
  }

  /// Items not yet claimed (racy snapshot; for monitoring only).
  [[nodiscard]] std::uint32_t remaining() const {
    const std::uint64_t r = range_.load(std::memory_order_relaxed);
    const std::uint32_t head = unpack_head(r);
    const std::uint32_t tail = unpack_tail(r);
    return head < tail ? tail - head : 0;
  }

 private:
  static std::uint64_t pack(std::uint32_t head, std::uint32_t tail) {
    return (static_cast<std::uint64_t>(head) << 32) | tail;
  }
  static std::uint32_t unpack_head(std::uint64_t r) { return static_cast<std::uint32_t>(r >> 32); }
  static std::uint32_t unpack_tail(std::uint64_t r) {
    return static_cast<std::uint32_t>(r & 0xffffffffu);
  }

  std::atomic<std::uint64_t> range_{0};
};

}  // namespace animus::runner
