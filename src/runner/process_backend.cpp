// ProcessShardBackend: fork N workers, feed them trial indices over
// pipes, read codec-encoded results back, reap crashes into
// SweepResult::errors without losing the rest of the sweep.
//
// Topology: one command pipe (parent -> worker) and one result pipe
// (worker -> parent) per worker. The parent keeps exactly ONE trial in
// flight per worker — that is what makes a crash attributable (the
// in-flight index is the one that died with the worker) and what load-
// balances skewed trial costs (a worker asks for its next index only
// when the previous one is done, so fast workers drain the queue while
// a slow binary search occupies one shard).
//
// Wire protocol, one line per message:
//   parent -> worker:  "R <slot> <index>\n"   run submission index
//                      "Q\n"                  drain and _exit(0)
//   worker -> parent:  "O <slot> <elapsed_ms> <escaped-result>\n"
//                      "E <slot> <elapsed_ms> <escaped-what>\n"
//                      "T <slot> <escaped-trace>\n"  claimed-trial spans
//                      "P <escaped-profile>\n"       span-profile tables
// The payload escaping (backslash + newline) keeps messages line-framed
// for any codec output; the codec itself is already line-safe.
//
// The "P" message is the profile analogue of "T": a worker that ran with
// the sweep profiler enabled (the enabled flag is inherited through
// fork; the worker reset()s first so it ships only its own delta)
// serializes its aggregated span tables once, right after the "Q"
// drain request, and the parent merges them — profile statistics are
// commutative sums/extrema, so the merged snapshot is byte-identical to
// a thread-backend run of the same sweep. The parent therefore reads
// every draining worker's result pipe to EOF before reaping it.
//
// The "T" message closes the --trace-out gap: the armed TraceCapture
// state is inherited through fork, so the worker that runs the armed
// trial claims and captures its World's trace locally — every trial
// body finishes its epoch before returning, so the capture is complete
// right after body(). The worker serializes it (sim::serialize_records)
// and ships it once, just before that trial's result line; the parent
// deserializes into its own still-unclaimed capture slot
// (TraceCapture::deliver_remote), making the chrome trace identical to
// a thread-backend run of the same sweep.
//
// Workers _exit(2) rather than exit() so inherited stdio buffers are
// never double-flushed, and never write to stdout/stderr — the parent
// owns all reporting, which preserves the byte-identical-stdout
// contract across backends.
#include "runner/backend.hpp"

#if !defined(_WIN32)

#include <poll.h>
#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>

#include "obs/profile.hpp"
#include "obs/trace_capture.hpp"

namespace animus::runner {
namespace {

using Clock = std::chrono::steady_clock;

double ms_between(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double, std::milli>(b - a).count();
}

void escape_payload(std::string& out, std::string_view s) {
  for (const char c : s) {
    if (c == '\\') {
      out += "\\\\";
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
}

std::string unescape_payload(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '\\' && i + 1 < s.size()) {
      ++i;
      out += s[i] == 'n' ? '\n' : s[i];
    } else {
      out += s[i];
    }
  }
  return out;
}

/// Write all of `line` to fd; false on any failure (dead worker).
bool write_all(int fd, std::string_view line) {
  std::size_t off = 0;
  while (off < line.size()) {
    const ssize_t n = ::write(fd, line.data() + off, line.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

struct Worker {
  pid_t pid = -1;
  int cmd_w = -1;       ///< parent's write end of the command pipe
  int res_r = -1;       ///< parent's read end of the result pipe
  std::string buffer;   ///< partial-line accumulator for res_r
  std::size_t in_flight = static_cast<std::size_t>(-1);  ///< slot, or -1
  bool alive = false;
  bool draining = false;  ///< sent "Q", waiting for a clean exit
};

constexpr std::size_t kNone = static_cast<std::size_t>(-1);

/// The worker-side loop. Never returns.
[[noreturn]] void worker_main(int cmd_r, int res_w, std::uint64_t root_seed,
                              const std::vector<std::size_t>& indices, const EncodedBody& body,
                              std::size_t crash_trial) {
  std::FILE* cmd = ::fdopen(cmd_r, "r");
  if (cmd == nullptr) ::_exit(2);
  // The profiler's enabled flag and accumulated tables are both
  // inherited through fork: keep the flag, drop the parent's counts so
  // this worker ships only what it observes itself.
  if (obs::span_profiler().enabled()) obs::span_profiler().reset();
  char line[128];
  std::string msg;
  bool trace_sent = false;
  while (std::fgets(line, sizeof(line), cmd) != nullptr) {
    if (line[0] == 'Q') break;
    if (line[0] != 'R') continue;
    std::size_t slot = 0;
    unsigned long long index = 0;
    if (std::sscanf(line + 1, "%zu %llu", &slot, &index) != 2) ::_exit(2);
    if (index == crash_trial) ::raise(SIGKILL);  // deterministic crash hook
    (void)indices;
    TrialContext ctx;
    ctx.index = static_cast<std::size_t>(index);
    ctx.seed = trial_seed(root_seed, ctx.index);
    const auto t0 = Clock::now();
    char tag = 'O';
    std::string payload;
    try {
      obs::TraceCapture::TrialScope scope(ctx.index);
      payload = body(ctx);
    } catch (const std::exception& e) {
      tag = 'E';
      payload = e.what();
    } catch (...) {
      tag = 'E';
      payload = "unknown exception";
    }
    const double elapsed = ms_between(t0, Clock::now());
    // captured() stays true for the rest of this worker's life, so ship
    // the claimed trial's trace exactly once, ahead of its result line.
    if (!trace_sent && obs::trace_capture().captured()) {
      trace_sent = true;
      msg.clear();
      msg += 'T';
      msg += ' ';
      msg += std::to_string(slot);
      msg += ' ';
      escape_payload(msg, sim::serialize_records(obs::trace_capture().trace()));
      msg += '\n';
      if (!write_all(res_w, msg)) ::_exit(2);
    }
    msg.clear();
    msg += tag;
    msg += ' ';
    msg += std::to_string(slot);
    msg += ' ';
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%.6f", elapsed);
    msg += buf;
    msg += ' ';
    escape_payload(msg, payload);
    msg += '\n';
    if (!write_all(res_w, msg)) ::_exit(2);  // parent went away
  }
  // Drain requested (or the command pipe vanished): ship this worker's
  // aggregated span-profile tables once, then exit. The parent keeps
  // reading our result pipe to EOF, so the message cannot be lost.
  if (obs::span_profiler().enabled()) {
    msg.clear();
    msg += 'P';
    msg += ' ';
    escape_payload(msg, obs::serialize_profile(obs::span_profiler().snapshot()));
    msg += '\n';
    write_all(res_w, msg);  // best effort: the parent may already be gone
  }
  ::_exit(0);
}

}  // namespace

EncodedSweep ProcessShardBackend::run_encoded(const std::vector<std::size_t>& indices,
                                              std::size_t total, const EncodedBody& body,
                                              const ResultSink& sink) {
  obs::trace_capture().note_sweep_total(total);  // --trace-trial bounds accounting
  EncodedSweep out;
  const std::size_t count = indices.size();
  out.encoded.resize(count);
  out.produced.assign(count, 0);
  const int workers_n = static_cast<int>(
      std::min<std::size_t>(static_cast<std::size_t>(shards_), std::max<std::size_t>(count, 1)));
  out.stats.jobs = workers_n;
  if (count == 0) return out;
  out.stats.samples_ms.assign(count, 0.0);
  // One utilization slot per shard (busy = worker-measured trial time).
  out.stats.workers.assign(static_cast<std::size_t>(workers_n), WorkerUtil{});

  const std::uint64_t root_seed = resolve_root_seed(run_);
  const std::size_t chunk =
      run_.chunk > 0
          ? run_.chunk
          : std::clamp<std::size_t>(count / (8 * static_cast<std::size_t>(workers_n)),
                                    std::size_t{1}, std::size_t{64});

  // A worker we just discovered dead mid-write must not SIGPIPE us.
  struct sigaction ignore_pipe {};
  ignore_pipe.sa_handler = SIG_IGN;
  struct sigaction old_pipe {};
  ::sigaction(SIGPIPE, &ignore_pipe, &old_pipe);

  const auto sweep_start = Clock::now();
  std::vector<Worker> workers(static_cast<std::size_t>(workers_n));
  for (auto& w : workers) {
    int cmd[2] = {-1, -1};
    int res[2] = {-1, -1};
    if (::pipe(cmd) != 0 || ::pipe(res) != 0) break;
    const pid_t pid = ::fork();
    if (pid < 0) {
      ::close(cmd[0]);
      ::close(cmd[1]);
      ::close(res[0]);
      ::close(res[1]);
      break;
    }
    if (pid == 0) {
      // Child: keep only this worker's pipe ends (siblings forked
      // earlier are inherited — close their fds so their EOFs work).
      for (const auto& other : workers) {
        if (other.cmd_w >= 0) ::close(other.cmd_w);
        if (other.res_r >= 0) ::close(other.res_r);
      }
      ::close(cmd[1]);
      ::close(res[0]);
      worker_main(cmd[0], res[1], root_seed, indices, body, options_.crash_trial);
    }
    ::close(cmd[0]);
    ::close(res[1]);
    w.pid = pid;
    w.cmd_w = cmd[1];
    w.res_r = res[0];
    w.alive = true;
  }

  std::vector<char> resolved(count, 0);
  std::size_t next_slot = 0;
  std::size_t outstanding = count;
  std::size_t completed = 0;
  std::size_t failed = 0;

  auto record_error = [&](std::size_t slot, std::string what) {
    const std::size_t index = indices[slot];
    out.errors.push_back({index, trial_seed(root_seed, index), std::move(what)});
    resolved[slot] = 1;
    ++failed;
  };

  auto reap = [&](Worker& w) {
    w.alive = false;
    if (w.cmd_w >= 0) ::close(w.cmd_w);
    if (w.res_r >= 0) ::close(w.res_r);
    w.cmd_w = w.res_r = -1;
    int status = 0;
    ::waitpid(w.pid, &status, 0);
    return status;
  };

  /// Hand the next queued slot to `w`, or tell it to drain.
  auto dispatch = [&](Worker& w) {
    while (next_slot < count && resolved[next_slot]) ++next_slot;
    if (next_slot >= count) {
      w.in_flight = kNone;
      w.draining = true;
      write_all(w.cmd_w, "Q\n");  // failure is fine: EOF will reap it
      return;
    }
    const std::size_t slot = next_slot++;
    w.in_flight = slot;
    const std::string msg =
        "R " + std::to_string(slot) + " " + std::to_string(indices[slot]) + "\n";
    if (!write_all(w.cmd_w, msg)) {
      // Worker died between trials with this one just assigned: the
      // trial never ran, but the worker is gone — account and reap.
      const int status = reap(w);
      record_error(slot, WIFSIGNALED(status)
                             ? std::string("worker killed by signal ") +
                                   std::to_string(WTERMSIG(status)) + " before trial started"
                             : "worker exited before trial started");
      w.in_flight = kNone;
      --outstanding;
    }
  };

  auto progress_beat = [&](bool force) {
    if (!run_.progress) return;
    if (!force && completed % chunk != 0) return;
    Progress p;
    p.done = completed;
    p.total = count;
    p.errors = failed;
    p.workers_busy = 0;
    for (const auto& w : workers) p.workers_busy += (w.alive && w.in_flight != kNone) ? 1 : 0;
    p.jobs = workers_n;
    run_.progress(p);
  };

  /// One complete result line from worker `w`.
  auto handle_line = [&](Worker& w, std::string_view line) {
    if (line.size() >= 2 && line[0] == 'P') {
      // A draining worker's span-profile tables: fold them into the
      // process-wide profiler (commutative merge — shard count and
      // arrival order cannot change the snapshot).
      obs::ProfileReport remote;
      if (obs::deserialize_profile(unescape_payload(line.substr(2)), &remote)) {
        obs::span_profiler().merge(remote);
      }
      return;
    }
    if (line.size() >= 2 && line[0] == 'T') {
      // Claimed-trial trace shipped from a worker: adopt it into this
      // process's (armed, still unclaimed) capture slot.
      const auto payload_at = line.find(' ', 2);
      if (payload_at == std::string_view::npos) return;
      sim::TraceRecorder remote;
      if (sim::deserialize_records(unescape_payload(line.substr(payload_at + 1)), &remote)) {
        obs::trace_capture().deliver_remote(std::move(remote));
      }
      return;
    }
    if (line.size() < 2 || (line[0] != 'O' && line[0] != 'E')) return;
    std::size_t slot = 0;
    double elapsed = 0.0;
    int consumed = 0;
    const std::string head(line.substr(1, std::min<std::size_t>(line.size() - 1, 64)));
    if (std::sscanf(head.c_str(), "%zu %lf %n", &slot, &elapsed, &consumed) != 2) return;
    const auto payload_at = line.find(' ', line.find(' ', 2) + 1) + 1;
    const std::string payload = unescape_payload(line.substr(payload_at));
    if (slot >= count || resolved[slot]) return;
    const std::size_t index = indices[slot];
    out.stats.samples_ms[slot] = elapsed;
    out.stats.trial_ms.add(elapsed);
    WorkerUtil& util = out.stats.workers[static_cast<std::size_t>(&w - workers.data())];
    ++util.trials;
    util.busy_ms += elapsed;
    if (line[0] == 'O') {
      if (sink) sink(index, trial_seed(root_seed, index), payload);
      out.encoded[slot] = payload;
      out.produced[slot] = 1;
    } else {
      out.errors.push_back({index, trial_seed(root_seed, index), payload});
      ++failed;
    }
    resolved[slot] = 1;
    w.in_flight = kNone;
    --outstanding;
    ++completed;
    progress_beat(completed == count);
    dispatch(w);
  };

  // Prime every worker with one trial.
  for (auto& w : workers) {
    if (w.alive) dispatch(w);
  }

  std::vector<pollfd> fds;
  while (outstanding > 0) {
    fds.clear();
    std::vector<Worker*> polled;
    for (auto& w : workers) {
      if (!w.alive) continue;
      fds.push_back({w.res_r, POLLIN, 0});
      polled.push_back(&w);
    }
    if (fds.empty()) {
      // Every worker is gone with work still queued or in flight: the
      // sweep cannot make progress — record what remains and stop.
      for (std::size_t slot = 0; slot < count; ++slot) {
        if (!resolved[slot]) {
          record_error(slot, "no surviving worker (all " + std::to_string(workers_n) +
                                 " shards exited)");
          --outstanding;
        }
      }
      break;
    }
    const int rc = ::poll(fds.data(), fds.size(), -1);
    if (rc < 0) {
      if (errno == EINTR) continue;
      break;
    }
    for (std::size_t i = 0; i < fds.size(); ++i) {
      if ((fds[i].revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;
      Worker& w = *polled[i];
      char buf[4096];
      const ssize_t n = ::read(w.res_r, buf, sizeof(buf));
      if (n > 0) {
        w.buffer.append(buf, static_cast<std::size_t>(n));
        std::size_t start = 0;
        for (std::size_t nl = w.buffer.find('\n', start); nl != std::string::npos;
             nl = w.buffer.find('\n', start)) {
          handle_line(w, std::string_view(w.buffer).substr(start, nl - start));
          start = nl + 1;
        }
        w.buffer.erase(0, start);
        continue;
      }
      if (n < 0 && (errno == EINTR || errno == EAGAIN)) continue;
      // EOF: clean drain after "Q", or a crash with a trial in flight.
      const std::size_t in_flight = w.in_flight;
      const bool was_draining = w.draining;
      const int status = reap(w);
      if (in_flight != kNone) {
        std::string what;
        if (WIFSIGNALED(status)) {
          what = "worker killed by signal " + std::to_string(WTERMSIG(status)) + " (" +
                 ::strsignal(WTERMSIG(status)) + ") while running trial " +
                 std::to_string(indices[in_flight]);
        } else {
          what = "worker exited with status " +
                 std::to_string(WIFEXITED(status) ? WEXITSTATUS(status) : -1) +
                 " while running trial " + std::to_string(indices[in_flight]);
        }
        record_error(in_flight, std::move(what));
        --outstanding;
        ++completed;
        progress_beat(true);
      } else if (!was_draining) {
        // Idle worker died between dispatches; nothing was lost.
      }
    }
  }

  // Drain the survivors and reap them. A draining worker ships its "P"
  // span-profile message between the "Q" and its clean exit — and the
  // main poll loop may have returned (outstanding hit zero) before that
  // message arrived — so read each result pipe to EOF before reaping.
  for (auto& w : workers) {
    if (!w.alive) continue;
    if (!w.draining) write_all(w.cmd_w, "Q\n");
    char buf[4096];
    for (;;) {
      const ssize_t n = ::read(w.res_r, buf, sizeof(buf));
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0) break;
      w.buffer.append(buf, static_cast<std::size_t>(n));
      std::size_t start = 0;
      for (std::size_t nl = w.buffer.find('\n', start); nl != std::string::npos;
           nl = w.buffer.find('\n', start)) {
        handle_line(w, std::string_view(w.buffer).substr(start, nl - start));
        start = nl + 1;
      }
      w.buffer.erase(0, start);
    }
    reap(w);
  }

  ::sigaction(SIGPIPE, &old_pipe, nullptr);

  out.stats.wall_ms = ms_between(sweep_start, Clock::now());
  for (auto& util : out.stats.workers) {
    util.wait_ms = std::max(0.0, out.stats.wall_ms - util.busy_ms);
  }
  std::sort(out.errors.begin(), out.errors.end(),
            [](const TrialError& a, const TrialError& b) { return a.index < b.index; });
  return out;
}

}  // namespace animus::runner

#else  // _WIN32: the factory refuses to construct one; keep the linker happy.

namespace animus::runner {
EncodedSweep ProcessShardBackend::run_encoded(const std::vector<std::size_t>&, std::size_t,
                                              const EncodedBody&, const ResultSink&) {
  return {};
}
}  // namespace animus::runner

#endif
