// ProcessShardBackend: fork N workers, feed them trial indices over
// pipes in batched, credit-windowed frames, read codec-encoded results
// back, reap crashes into SweepResult::errors without losing the rest
// of the sweep.
//
// Topology: one command pipe (parent -> worker) and one result pipe
// (worker -> parent) per worker. Dispatch is FRAMED and PIPELINED: the
// parent packs up to `batch` trials into one length-prefixed command
// frame and keeps `credits` frames in flight per worker, so a worker
// finishing a frame finds the next one already sitting in its pipe —
// no round-trip stall between trials. The command pipe is non-blocking
// (frames queue in a per-worker pending buffer flushed on POLLOUT), so
// the parent can never deadlock against a worker that is itself
// blocked writing results. `batch == 1` with one credit is the
// compatibility mode: single-trial frames, one in flight — the exact
// pre-batching protocol, retained so the unbatched dispatch cost stays
// measurable. `batch == 0` sizes frames automatically from measured
// trial cost (~1 ms of work per frame, up to kMaxBatch).
//
// Wire protocol:
//   parent -> worker:  "B <count> <len>\n" + <len> payload bytes, the
//                      payload being <count> records "<slot> <index>\n"
//                      "Q\n"                  drain and _exit(0)
//   worker -> parent:  "O <slot> <elapsed_ms> <escaped-result>\n"
//                      "E <slot> <elapsed_ms> <escaped-what>\n"
//                      "T <slot> <escaped-trace>\n"  claimed-trial spans
//                      "P <escaped-profile>\n"       span-profile tables
// The payload escaping (backslash + newline) keeps messages line-framed
// for any codec output; the codec itself is already line-safe.
//
// Result write-back is batched: a worker buffers its O/E lines and
// flushes them with ONE write per frame. Crash attribution therefore
// cannot ride on the result stream — a worker SIGKILLed mid-frame takes
// its buffered results with it. Instead each worker publishes a
// PROGRESS WORD into a page of MAP_SHARED|MAP_ANONYMOUS memory mapped
// before the fork: one atomic store of (slot + 1) immediately before
// each trial runs. The store costs no syscall (this is what lets the
// batched protocol drop the per-trial ack round-trip entirely) and the
// page survives the worker's death, because SIGKILL tears down the
// process, not the shared mapping. When a worker dies with work
// outstanding, the parent loads the word: the named slot — started but
// never resulted — is the one genuinely in-flight trial and becomes the
// TrialError. Everything else in the dead worker's window (trials it
// never started, and trials it finished whose buffered results died
// with it) is re-queued to the surviving workers; trials are
// deterministic functions of (root_seed, index), so a re-run reproduces
// the lost results exactly. A word naming an already-resolved slot
// (worker died idle between frames, its flushes all received) blames
// nothing: the whole window is simply re-run.
//
// The "P" message is the profile analogue of "T": a worker that ran with
// the sweep profiler enabled (the enabled flag is inherited through
// fork; the worker reset()s first so it ships only its own delta)
// serializes its aggregated span tables once, right after the "Q"
// drain request, and the parent merges them — profile statistics are
// commutative sums/extrema, so the merged snapshot is byte-identical to
// a thread-backend run of the same sweep. The parent therefore reads
// every draining worker's result pipe to EOF before reaping it.
//
// The "T" message closes the --trace-out gap: the armed TraceCapture
// state is inherited through fork, so the worker that runs the armed
// trial claims and captures its World's trace locally — every trial
// body finishes its epoch before returning, so the capture is complete
// right after body(). The worker serializes it (sim::serialize_records)
// and ships it once, just before that trial's result line; the parent
// deserializes into its own still-unclaimed capture slot
// (TraceCapture::deliver_remote), making the chrome trace identical to
// a thread-backend run of the same sweep.
//
// Every pipe transfer is short-write/short-read and EINTR safe: frames
// larger than PIPE_BUF (large batches, or a deliberately shrunken pipe
// via ANIMUS_SHARD_PIPE_BUF) arrive in fragments on both sides, and the
// parent's writev-based frame flush resumes mid-iovec.
//
// Workers _exit(2) rather than exit() so inherited stdio buffers are
// never double-flushed, and never write to stdout/stderr — the parent
// owns all reporting, which preserves the byte-identical-stdout
// contract across backends.
#include "runner/backend.hpp"

#if !defined(_WIN32)

#include <fcntl.h>
#include <poll.h>
#include <signal.h>
#include <sys/mman.h>
#include <sys/types.h>
#include <sys/uio.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <charconv>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <deque>
#include <string>

#include "obs/profile.hpp"
#include "obs/trace_capture.hpp"

namespace animus::runner {
namespace {

using Clock = std::chrono::steady_clock;

double ms_between(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double, std::milli>(b - a).count();
}

void escape_payload(std::string& out, std::string_view s) {
  for (const char c : s) {
    if (c == '\\') {
      out += "\\\\";
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
}

std::string unescape_payload(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '\\' && i + 1 < s.size()) {
      ++i;
      out += s[i] == 'n' ? '\n' : s[i];
    } else {
      out += s[i];
    }
  }
  return out;
}

/// Write all of `buf` to a BLOCKING fd; false on any failure (dead
/// peer). Loops over short writes (a signal can interrupt a large
/// write mid-transfer) and EINTR.
bool write_all(int fd, std::string_view buf) {
  std::size_t off = 0;
  while (off < buf.size()) {
    const ssize_t n = ::write(fd, buf.data() + off, buf.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

/// EINTR/short-read safe buffered reader over a raw fd (worker side —
/// replaces stdio so frame payloads can be read by exact byte count).
class FdReader {
 public:
  explicit FdReader(int fd) : fd_(fd) {}

  /// One '\n'-terminated line, newline stripped. False on EOF/error.
  bool read_line(std::string* line) {
    for (;;) {
      const auto nl = buf_.find('\n', pos_);
      if (nl != std::string::npos) {
        line->assign(buf_, pos_, nl - pos_);
        pos_ = nl + 1;
        compact();
        return true;
      }
      if (!fill()) return false;
    }
  }

  /// Exactly `n` payload bytes. False on EOF/error before `n` arrived.
  bool read_exact(std::size_t n, std::string* out) {
    while (buf_.size() - pos_ < n) {
      if (!fill()) return false;
    }
    out->assign(buf_, pos_, n);
    pos_ += n;
    compact();
    return true;
  }

 private:
  bool fill() {
    char chunk[4096];
    for (;;) {
      const ssize_t n = ::read(fd_, chunk, sizeof(chunk));
      if (n > 0) {
        buf_.append(chunk, static_cast<std::size_t>(n));
        return true;
      }
      if (n < 0 && errno == EINTR) continue;
      return false;  // EOF or hard error
    }
  }

  void compact() {
    if (pos_ > 4096 && pos_ >= buf_.size()) {
      buf_.clear();
      pos_ = 0;
    }
  }

  int fd_;
  std::string buf_;
  std::size_t pos_ = 0;
};

constexpr std::size_t kNone = static_cast<std::size_t>(-1);

/// The crash-attribution channel: one word of MAP_SHARED memory per
/// worker, holding (slot + 1) of the trial the worker is currently
/// running (0 = none started yet). Written with a single atomic store
/// before each trial — no syscall — and readable by the parent even
/// after the worker is SIGKILLed, because the shared mapping outlives
/// the process.
using ProgressWord = std::atomic<std::uint64_t>;
static_assert(ProgressWord::is_always_lock_free);

struct Worker {
  pid_t pid = -1;
  int cmd_w = -1;      ///< parent's write end of the command pipe (nonblocking)
  int res_r = -1;      ///< parent's read end of the result pipe
  ProgressWord* progress = nullptr;  ///< shared crash-attribution word
  std::string buffer;  ///< partial-line accumulator for res_r
  std::string pending_out;  ///< frame bytes the pipe has not accepted yet
  std::deque<std::size_t> outstanding;  ///< dispatched, unresolved slots, in order
  bool alive = false;
  bool draining = false;  ///< sent "Q", waiting for a clean exit
};

/// Append "<a> <b>\n" without allocating.
void append_pair(std::string& out, std::size_t a, std::size_t b) {
  char rec[48];
  char* p = rec;
  auto r = std::to_chars(p, rec + sizeof(rec), a);
  p = r.ptr;
  *p++ = ' ';
  r = std::to_chars(p, rec + sizeof(rec), b);
  p = r.ptr;
  *p++ = '\n';
  out.append(rec, static_cast<std::size_t>(p - rec));
}

/// The worker-side loop. Never returns.
[[noreturn]] void worker_main(int cmd_r, int res_w, ProgressWord* progress,
                              std::uint64_t root_seed, const EncodedBody& body,
                              std::size_t crash_trial) {
  // The profiler's enabled flag and accumulated tables are both
  // inherited through fork: keep the flag, drop the parent's counts so
  // this worker ships only what it observes itself.
  if (obs::span_profiler().enabled()) obs::span_profiler().reset();
  FdReader reader(cmd_r);
  std::string line;
  std::string payload;
  std::string results;  ///< buffered O/E (and T) lines, flushed per frame
  std::string msg;
  bool trace_sent = false;
  while (reader.read_line(&line)) {
    if (line.empty() || line[0] == 'Q') break;
    if (line[0] != 'B') continue;
    // "B <count> <len>"
    const char* p = line.data() + 1;
    const char* end = line.data() + line.size();
    while (p < end && *p == ' ') ++p;
    std::size_t count = 0;
    auto r = std::from_chars(p, end, count);
    if (r.ec != std::errc{}) ::_exit(2);
    p = r.ptr;
    while (p < end && *p == ' ') ++p;
    std::size_t len = 0;
    r = std::from_chars(p, end, len);
    if (r.ec != std::errc{}) ::_exit(2);
    if (!reader.read_exact(len, &payload)) ::_exit(2);

    results.clear();
    const char* rp = payload.data();
    const char* rend = payload.data() + payload.size();
    for (std::size_t t = 0; t < count; ++t) {
      std::size_t slot = 0;
      std::size_t index = 0;
      auto rr = std::from_chars(rp, rend, slot);
      if (rr.ec != std::errc{}) ::_exit(2);
      rp = rr.ptr + 1;  // ' '
      rr = std::from_chars(rp, rend, index);
      if (rr.ec != std::errc{}) ::_exit(2);
      rp = rr.ptr + 1;  // '\n'
      // Publish "running slot" BEFORE the trial (and before the crash
      // hook): if this process dies anywhere past this store, the
      // parent attributes the death to exactly this trial.
      if (progress) progress->store(slot + 1, std::memory_order_seq_cst);
      if (index == crash_trial) ::raise(SIGKILL);  // deterministic crash hook
      TrialContext ctx;
      ctx.index = index;
      ctx.seed = trial_seed(root_seed, index);
      const auto t0 = Clock::now();
      char tag = 'O';
      std::string out_payload;
      try {
        obs::TraceCapture::TrialScope scope(ctx.index);
        out_payload = body(ctx);
      } catch (const std::exception& e) {
        tag = 'E';
        out_payload = e.what();
      } catch (...) {
        tag = 'E';
        out_payload = "unknown exception";
      }
      const double elapsed = ms_between(t0, Clock::now());
      // captured() stays true for the rest of this worker's life, so
      // ship the claimed trial's trace exactly once, ahead of its
      // result line (same buffered flush keeps the order).
      if (!trace_sent && obs::trace_capture().captured()) {
        trace_sent = true;
        results += 'T';
        results += ' ';
        char nb[24];
        auto nr = std::to_chars(nb, nb + sizeof(nb), slot);
        results.append(nb, static_cast<std::size_t>(nr.ptr - nb));
        results += ' ';
        escape_payload(results, sim::serialize_records(obs::trace_capture().trace()));
        results += '\n';
      }
      results += tag;
      results += ' ';
      char nb[24];
      auto nr = std::to_chars(nb, nb + sizeof(nb), slot);
      results.append(nb, static_cast<std::size_t>(nr.ptr - nb));
      results += ' ';
      char eb[48];
      const auto er = std::to_chars(eb, eb + sizeof(eb), elapsed,
                                    std::chars_format::fixed, 6);
      results.append(eb, static_cast<std::size_t>(er.ptr - eb));
      results += ' ';
      escape_payload(results, out_payload);
      results += '\n';
    }
    // Batched write-back: one flush per frame, not per trial.
    if (!write_all(res_w, results)) ::_exit(2);  // parent went away
  }
  // Drain requested (or the command pipe vanished): ship this worker's
  // aggregated span-profile tables once, then exit. The parent keeps
  // reading our result pipe to EOF, so the message cannot be lost.
  if (obs::span_profiler().enabled()) {
    msg.clear();
    msg += 'P';
    msg += ' ';
    escape_payload(msg, obs::serialize_profile(obs::span_profiler().snapshot()));
    msg += '\n';
    write_all(res_w, msg);  // best effort: the parent may already be gone
  }
  ::_exit(0);
}

}  // namespace

EncodedSweep ProcessShardBackend::run_encoded(const std::vector<std::size_t>& indices,
                                              std::size_t total, const EncodedBody& body,
                                              const ResultSink& sink) {
  obs::trace_capture().note_sweep_total(total);  // --trace-trial bounds accounting
  EncodedSweep out;
  const std::size_t count = indices.size();
  out.encoded.resize(count);
  out.produced.assign(count, 0);
  const int workers_n = static_cast<int>(
      std::min<std::size_t>(static_cast<std::size_t>(shards_), std::max<std::size_t>(count, 1)));
  out.stats.jobs = workers_n;
  if (count == 0) return out;
  out.stats.samples_ms.assign(count, 0.0);
  // One utilization slot per shard (busy = worker-measured trial time).
  out.stats.workers.assign(static_cast<std::size_t>(workers_n), WorkerUtil{});
  DispatchStats& dispatch_stats = out.stats.dispatch;

  const std::uint64_t root_seed = resolve_root_seed(run_);
  const std::size_t chunk =
      run_.chunk > 0
          ? run_.chunk
          : std::clamp<std::size_t>(count / (8 * static_cast<std::size_t>(workers_n)),
                                    std::size_t{1}, std::size_t{64});

  // Frame sizing. An explicit batch is clamped to [1, kMaxBatch] and to
  // a fair per-shard share of the sweep (a 60-trial sweep on 3 shards
  // must not hand one worker a 60-trial frame). batch == 0 is auto:
  // probe with single-trial frames, then grow toward ~1 ms of measured
  // trial work per frame.
  const std::size_t fair_share =
      std::max<std::size_t>(1, (count + static_cast<std::size_t>(workers_n) - 1) /
                                   static_cast<std::size_t>(workers_n));
  const bool auto_batch = options_.batch <= 0;
  const std::size_t explicit_batch = std::clamp<std::size_t>(
      auto_batch ? 1 : static_cast<std::size_t>(options_.batch), 1,
      static_cast<std::size_t>(kMaxBatch));
  auto batch_now = [&]() -> std::size_t {
    std::size_t b = explicit_batch;
    if (auto_batch) {
      if (out.stats.trial_ms.count() < static_cast<std::size_t>(workers_n)) {
        b = 1;  // probe frames until every shard has reported a cost
      } else {
        const double mean_ms = std::max(out.stats.trial_ms.mean(), 1e-6);
        b = static_cast<std::size_t>(std::clamp(1.0 / mean_ms, 1.0,
                                                static_cast<double>(kMaxBatch)));
      }
    }
    return std::min(b, fair_share);
  };
  // One credit == the old one-in-flight protocol; that is forced for
  // batch == 1 so the compatibility mode is bit-exact in behavior.
  const std::size_t credits = (!auto_batch && explicit_batch == 1)
                                  ? 1
                                  : static_cast<std::size_t>(std::max(options_.credits, 1));

  // A worker we just discovered dead mid-write must not SIGPIPE us.
  struct sigaction ignore_pipe {};
  ignore_pipe.sa_handler = SIG_IGN;
  struct sigaction old_pipe {};
  ::sigaction(SIGPIPE, &ignore_pipe, &old_pipe);

  const auto sweep_start = Clock::now();
  std::vector<Worker> workers(static_cast<std::size_t>(workers_n));
  for (auto& w : workers) {
    int cmd[2] = {-1, -1};
    int res[2] = {-1, -1};
    if (::pipe(cmd) != 0 || ::pipe(res) != 0) break;
    // The crash-attribution word: mapped shared BEFORE the fork so both
    // sides see one cache line, surviving the child's death. A failed
    // mmap degrades gracefully (no per-trial attribution, window still
    // re-dispatched).
    void* page = ::mmap(nullptr, sizeof(ProgressWord), PROT_READ | PROT_WRITE,
                        MAP_SHARED | MAP_ANONYMOUS, -1, 0);
    if (page != MAP_FAILED) {
      w.progress = new (page) ProgressWord(0);
    }
#if defined(F_SETPIPE_SZ)
    if (options_.pipe_buf > 0) {
      // Test hook: shrink both pipes so batch frames exceed the pipe
      // capacity and every transfer path sees short writes/reads.
      ::fcntl(cmd[1], F_SETPIPE_SZ, static_cast<int>(options_.pipe_buf));
      ::fcntl(res[1], F_SETPIPE_SZ, static_cast<int>(options_.pipe_buf));
    }
#endif
    const pid_t pid = ::fork();
    if (pid < 0) {
      ::close(cmd[0]);
      ::close(cmd[1]);
      ::close(res[0]);
      ::close(res[1]);
      break;
    }
    if (pid == 0) {
      // Child: keep only this worker's pipe ends (siblings forked
      // earlier are inherited — close their fds so their EOFs work).
      for (const auto& other : workers) {
        if (other.cmd_w >= 0) ::close(other.cmd_w);
        if (other.res_r >= 0) ::close(other.res_r);
      }
      ::close(cmd[1]);
      ::close(res[0]);
      worker_main(cmd[0], res[1], w.progress, root_seed, body, options_.crash_trial);
    }
    ::close(cmd[0]);
    ::close(res[1]);
    // Non-blocking command writes: a full pipe queues bytes in
    // pending_out instead of blocking the parent (which must stay free
    // to drain result pipes — the deadlock the old one-in-flight
    // protocol never had to think about).
    ::fcntl(cmd[1], F_SETFL, ::fcntl(cmd[1], F_GETFL) | O_NONBLOCK);
    w.pid = pid;
    w.cmd_w = cmd[1];
    w.res_r = res[0];
    w.alive = true;
  }

  std::vector<char> resolved(count, 0);
  std::deque<std::size_t> requeued;  ///< slots returned by a crashed worker
  std::size_t next_slot = 0;
  std::size_t resolved_count = 0;
  std::size_t completed = 0;
  std::size_t failed = 0;
  std::string frame_buf;

  auto record_error = [&](std::size_t slot, std::string what) {
    const std::size_t index = indices[slot];
    out.errors.push_back({index, trial_seed(root_seed, index), std::move(what)});
    resolved[slot] = 1;
    ++resolved_count;
    ++failed;
  };

  auto reap = [&](Worker& w) {
    w.alive = false;
    if (w.cmd_w >= 0) ::close(w.cmd_w);
    if (w.res_r >= 0) ::close(w.res_r);
    w.cmd_w = w.res_r = -1;
    int status = 0;
    ::waitpid(w.pid, &status, 0);
    if (w.progress != nullptr) {
      ::munmap(w.progress, sizeof(ProgressWord));
      w.progress = nullptr;
    }
    return status;
  };

  /// Next slot to dispatch: crash-requeued work first, then the cursor.
  /// A requeued slot can have resolved in the meantime (its "lost"
  /// result was still buffered when the crash was handled) — skip it.
  auto next_work = [&]() -> std::size_t {
    while (!requeued.empty()) {
      const std::size_t slot = requeued.front();
      requeued.pop_front();
      if (!resolved[slot]) return slot;
    }
    while (next_slot < count && resolved[next_slot]) ++next_slot;
    return next_slot < count ? next_slot++ : kNone;
  };

  /// Push pending_out into the (non-blocking) command pipe. Returns
  /// false when the worker is dead (EPIPE); EAGAIN leaves the rest in
  /// pending_out for the next POLLOUT.
  auto flush_pending = [&](Worker& w) -> bool {
    std::size_t off = 0;
    bool ok = true;
    while (off < w.pending_out.size()) {
      const ssize_t n =
          ::write(w.cmd_w, w.pending_out.data() + off, w.pending_out.size() - off);
      if (n < 0) {
        if (errno == EINTR) continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK) break;
        ok = false;
        break;
      }
      off += static_cast<std::size_t>(n);
    }
    dispatch_stats.bytes_out += off;
    w.pending_out.erase(0, off);
    return ok;
  };

  /// Build one frame of up to batch_now() trials and start writing it
  /// (writev of header + payload; anything the pipe does not accept is
  /// queued on pending_out). Returns 0 when no work was available,
  /// 1 on success, -1 when the write hit a dead pipe.
  auto send_frame = [&](Worker& w) -> int {
    const std::size_t limit = batch_now();
    const auto t0 = Clock::now();
    frame_buf.clear();
    std::size_t n = 0;
    while (n < limit) {
      const std::size_t slot = next_work();
      if (slot == kNone) break;
      append_pair(frame_buf, slot, indices[slot]);
      w.outstanding.push_back(slot);
      ++n;
    }
    if (n == 0) return 0;
    char header[64];
    char* h = header;
    *h++ = 'B';
    *h++ = ' ';
    auto hr = std::to_chars(h, header + sizeof(header), n);
    h = hr.ptr;
    *h++ = ' ';
    hr = std::to_chars(h, header + sizeof(header), frame_buf.size());
    h = hr.ptr;
    *h++ = '\n';
    const std::size_t header_len = static_cast<std::size_t>(h - header);
    ++dispatch_stats.frames;
    dispatch_stats.trials += n;
    dispatch_stats.max_batch = std::max<std::uint64_t>(dispatch_stats.max_batch, n);
    const auto t1 = Clock::now();
    dispatch_stats.encode_ms += ms_between(t0, t1);

    bool ok = true;
    if (w.pending_out.empty()) {
      // Fast path: writev the frame straight into the pipe, resuming
      // mid-iovec on short writes; queue whatever does not fit.
      iovec iov[2] = {{header, header_len},
                      {frame_buf.data(), frame_buf.size()}};
      std::size_t sent = 0;
      const std::size_t frame_total = header_len + frame_buf.size();
      while (sent < frame_total) {
        iovec* cur = iov;
        int cnt = 2;
        std::size_t skip = sent;
        while (cnt > 0 && skip >= cur->iov_len) {
          skip -= cur->iov_len;
          ++cur;
          --cnt;
        }
        iovec adj[2];
        for (int k = 0; k < cnt; ++k) adj[k] = cur[k];
        adj[0].iov_base = static_cast<char*>(adj[0].iov_base) + skip;
        adj[0].iov_len -= skip;
        const ssize_t wrote = ::writev(w.cmd_w, adj, cnt);
        if (wrote < 0) {
          if (errno == EINTR) continue;
          if (errno == EAGAIN || errno == EWOULDBLOCK) {
            w.pending_out.append(header, header_len);
            w.pending_out += frame_buf;
            w.pending_out.erase(0, sent);
            break;
          }
          ok = false;
          break;
        }
        sent += static_cast<std::size_t>(wrote);
      }
      dispatch_stats.bytes_out += std::min(sent, frame_total);
    } else {
      w.pending_out.append(header, header_len);
      w.pending_out += frame_buf;
      ok = flush_pending(w);
    }
    dispatch_stats.flush_ms += ms_between(t1, Clock::now());
    return ok ? 1 : -1;
  };

  auto progress_beat = [&](bool force) {
    if (!run_.progress) return;
    if (!force && completed % chunk != 0) return;
    Progress p;
    p.done = completed;
    p.total = count;
    p.errors = failed;
    p.workers_busy = 0;
    for (const auto& w : workers) p.workers_busy += (w.alive && !w.outstanding.empty()) ? 1 : 0;
    p.jobs = workers_n;
    run_.progress(p);
  };

  std::function<void(Worker&)> handle_death;  // forward: refill uses it

  /// Top the worker's credit window back up: send frames while a full
  /// frame of window space is free (results arrive in frame bursts, so
  /// this refills at frame boundaries instead of dribbling one-trial
  /// frames after every result).
  auto refill = [&](Worker& w) {
    if (!w.alive || w.draining) return;
    for (;;) {
      const std::size_t b = batch_now();
      if (w.outstanding.size() + b > b * credits) break;
      const int rc = send_frame(w);
      if (rc == 0) break;  // queue empty
      if (rc < 0) {        // command pipe is dead: the worker is gone
        handle_death(w);
        break;
      }
    }
  };

  /// A worker died (EOF on its result pipe, or a command write hit
  /// EPIPE). Blame the one genuinely in-flight trial — the slot its
  /// shared progress word names, started but never resulted — and
  /// re-queue the rest of its window to the survivors.
  handle_death = [&](Worker& w) {
    // Load the attribution word BEFORE reap() unmaps the shared page.
    // The word can lag the result stream (worker died idle; its last
    // flush was fully received), in which case the named slot is
    // already resolved and nothing is blamed.
    std::size_t blamed = kNone;
    if (w.progress != nullptr) {
      const std::uint64_t word = w.progress->load(std::memory_order_seq_cst);
      if (word != 0 && !resolved[static_cast<std::size_t>(word - 1)]) {
        blamed = static_cast<std::size_t>(word - 1);
      }
    }
    const int status = reap(w);
    if (blamed != kNone) {
      std::string what;
      if (WIFSIGNALED(status)) {
        what = "worker killed by signal " + std::to_string(WTERMSIG(status)) + " (" +
               ::strsignal(WTERMSIG(status)) + ") while running trial " +
               std::to_string(indices[blamed]);
      } else {
        what = "worker exited with status " +
               std::to_string(WIFEXITED(status) ? WEXITSTATUS(status) : -1) +
               " while running trial " + std::to_string(indices[blamed]);
      }
      record_error(blamed, std::move(what));
      ++completed;
    }
    for (const std::size_t slot : w.outstanding) {
      if (slot == blamed || resolved[slot]) continue;
      requeued.push_back(slot);
      ++dispatch_stats.redispatched;
    }
    w.outstanding.clear();
    w.pending_out.clear();
    progress_beat(true);
    // The dead worker's window flows to the survivors immediately.
    for (auto& other : workers) {
      if (other.alive) refill(other);
    }
  };

  /// One complete message line from worker `w`.
  auto handle_line = [&](Worker& w, std::string_view line) {
    if (line.size() >= 2 && line[0] == 'P') {
      // A draining worker's span-profile tables: fold them into the
      // process-wide profiler (commutative merge — shard count and
      // arrival order cannot change the snapshot).
      obs::ProfileReport remote;
      if (obs::deserialize_profile(unescape_payload(line.substr(2)), &remote)) {
        obs::span_profiler().merge(remote);
      }
      return;
    }
    if (line.size() >= 2 && line[0] == 'T') {
      // Claimed-trial trace shipped from a worker: adopt it into this
      // process's (armed, still unclaimed) capture slot.
      const auto payload_at = line.find(' ', 2);
      if (payload_at == std::string_view::npos) return;
      sim::TraceRecorder remote;
      if (sim::deserialize_records(unescape_payload(line.substr(payload_at + 1)), &remote)) {
        obs::trace_capture().deliver_remote(std::move(remote));
      }
      return;
    }
    if (line.size() < 2 || (line[0] != 'O' && line[0] != 'E')) return;
    // "O <slot> <elapsed> <payload>" — parsed without sscanf or
    // temporary strings: this runs once per trial and is the parent's
    // hot path.
    const char* p = line.data() + 2;
    const char* end = line.data() + line.size();
    std::size_t slot = 0;
    auto r = std::from_chars(p, end, slot);
    if (r.ec != std::errc{} || r.ptr >= end || *r.ptr != ' ') return;
    double elapsed = 0.0;
    auto r2 = std::from_chars(r.ptr + 1, end, elapsed);
    if (r2.ec != std::errc{}) return;
    const char* payload = r2.ptr < end && *r2.ptr == ' ' ? r2.ptr + 1 : r2.ptr;
    const std::string_view raw(payload, static_cast<std::size_t>(end - payload));
    if (slot >= count || resolved[slot]) return;
    const std::size_t index = indices[slot];
    out.stats.samples_ms[slot] = elapsed;
    out.stats.trial_ms.add(elapsed);
    WorkerUtil& util = out.stats.workers[static_cast<std::size_t>(&w - workers.data())];
    ++util.trials;
    util.busy_ms += elapsed;
    if (line[0] == 'O') {
      // Fast path: most codec payloads carry no escapes at all.
      if (std::memchr(raw.data(), '\\', raw.size()) == nullptr) {
        if (sink) sink(index, trial_seed(root_seed, index), raw);
        out.encoded[slot].assign(raw);
      } else {
        std::string decoded = unescape_payload(raw);
        if (sink) sink(index, trial_seed(root_seed, index), decoded);
        out.encoded[slot] = std::move(decoded);
      }
      out.produced[slot] = 1;
      resolved[slot] = 1;
      ++resolved_count;
    } else {
      record_error(slot, unescape_payload(raw));
    }
    // Results arrive in dispatch order: retire the window front.
    if (!w.outstanding.empty() && w.outstanding.front() == slot) {
      w.outstanding.pop_front();
    } else {
      const auto it = std::find(w.outstanding.begin(), w.outstanding.end(), slot);
      if (it != w.outstanding.end()) w.outstanding.erase(it);
    }
    ++completed;
    progress_beat(completed == count);
    refill(w);
  };

  // Prime every worker's credit window.
  for (auto& w : workers) {
    if (w.alive) refill(w);
  }

  std::vector<pollfd> fds;
  std::vector<Worker*> polled;
  while (resolved_count < count) {
    // Result fds poll for POLLIN; command fds with queued frame bytes
    // poll for POLLOUT (the command pipe is non-blocking, so a full
    // pipe parks its bytes in pending_out until the worker drains it).
    fds.clear();
    polled.clear();
    for (auto& w : workers) {
      if (!w.alive) continue;
      fds.push_back({w.res_r, POLLIN, 0});
      polled.push_back(&w);
    }
    if (fds.empty()) {
      // Every worker is gone with work still queued or in flight: the
      // sweep cannot make progress — record what remains and stop.
      for (std::size_t slot = 0; slot < count; ++slot) {
        if (!resolved[slot]) {
          record_error(slot, "no surviving worker (all " + std::to_string(workers_n) +
                                 " shards exited)");
        }
      }
      break;
    }
    const std::size_t res_n = fds.size();
    for (auto& w : workers) {
      if (w.alive && !w.pending_out.empty()) {
        fds.push_back({w.cmd_w, POLLOUT, 0});
        polled.push_back(&w);
      }
    }
    const int rc = ::poll(fds.data(), fds.size(), -1);
    if (rc < 0) {
      if (errno == EINTR) continue;
      break;
    }
    for (std::size_t i = res_n; i < fds.size(); ++i) {
      if ((fds[i].revents & (POLLOUT | POLLHUP | POLLERR)) == 0) continue;
      Worker& w = *polled[i];
      if (!w.alive) continue;
      if (!flush_pending(w)) handle_death(w);
    }
    for (std::size_t i = 0; i < res_n; ++i) {
      if ((fds[i].revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;
      Worker& w = *polled[i];
      if (!w.alive) continue;
      char buf[8192];
      const ssize_t n = ::read(w.res_r, buf, sizeof(buf));
      if (n > 0) {
        dispatch_stats.bytes_in += static_cast<std::uint64_t>(n);
        w.buffer.append(buf, static_cast<std::size_t>(n));
        std::size_t start = 0;
        for (std::size_t nl = w.buffer.find('\n', start); nl != std::string::npos;
             nl = w.buffer.find('\n', start)) {
          handle_line(w, std::string_view(w.buffer).substr(start, nl - start));
          start = nl + 1;
        }
        w.buffer.erase(0, start);
        continue;
      }
      if (n < 0 && (errno == EINTR || errno == EAGAIN)) continue;
      // EOF: clean drain after "Q", or a crash with a window in flight.
      if (!w.outstanding.empty()) {
        handle_death(w);
      } else {
        reap(w);  // idle worker died between frames; nothing was lost
      }
    }
  }

  // Drain the survivors and reap them. A draining worker ships its "P"
  // span-profile message between the "Q" and its clean exit — and the
  // main poll loop may have returned (everything resolved) before that
  // message arrived — so read each result pipe to EOF before reaping.
  for (auto& w : workers) {
    if (!w.alive) continue;
    if (!w.draining) {
      w.draining = true;
      // All trials are resolved here, so the command pipe is idle: a
      // 2-byte write cannot hit EAGAIN. Failure just means the worker
      // is already gone — EOF below handles it.
      write_all(w.cmd_w, "Q\n");
    }
    char buf[8192];
    for (;;) {
      const ssize_t n = ::read(w.res_r, buf, sizeof(buf));
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0) break;
      dispatch_stats.bytes_in += static_cast<std::uint64_t>(n);
      w.buffer.append(buf, static_cast<std::size_t>(n));
      std::size_t start = 0;
      for (std::size_t nl = w.buffer.find('\n', start); nl != std::string::npos;
           nl = w.buffer.find('\n', start)) {
        handle_line(w, std::string_view(w.buffer).substr(start, nl - start));
        start = nl + 1;
      }
      w.buffer.erase(0, start);
    }
    reap(w);
  }

  ::sigaction(SIGPIPE, &old_pipe, nullptr);

  out.stats.wall_ms = ms_between(sweep_start, Clock::now());
  for (auto& util : out.stats.workers) {
    util.wait_ms = std::max(0.0, out.stats.wall_ms - util.busy_ms);
  }
  std::sort(out.errors.begin(), out.errors.end(),
            [](const TrialError& a, const TrialError& b) { return a.index < b.index; });
  return out;
}

}  // namespace animus::runner

#else  // _WIN32: the factory refuses to construct one; keep the linker happy.

namespace animus::runner {
EncodedSweep ProcessShardBackend::run_encoded(const std::vector<std::size_t>&, std::size_t,
                                              const EncodedBody&, const ResultSink&) {
  return {};
}
}  // namespace animus::runner

#endif
