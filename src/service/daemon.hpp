// CampaignDaemon: the long-running campaign service behind `campaignd`.
//
// Submissions (bench name or registered scenario name +
// seed/jobs/backend/shards/batch/tier) enter a FIFO
// queue over `POST /campaigns`; one scheduler thread drains the queue,
// running each campaign through the shared bench registry
// (service/benches.hpp) on the existing ExecutionBackend fleet. The
// observability surface:
//
//   GET  /campaigns               queued + running + finished runs
//   GET  /campaigns/<id>          one record, result CSV inlined
//   GET  /scenarios               registered attack scenarios (name,
//                                 description, analytic-eligible flag)
//   GET  /campaigns/<id>/metrics  current metrics snapshot
//   GET  /campaigns/<id>/trace    Chrome trace of the representative
//                                 trial (campaigns submitted with
//                                 "trace":true); 404 otherwise
//   GET  /campaigns/<id>/profile  sweep-wide span profile JSON (every
//                                 campaign is profiled); 404 for
//                                 pre-profiler records
//   GET  /events                  SSE: heartbeats (with trials/s + ETA)
//                                 + delta metric updates
//   POST /campaigns               submit; 202 {"id":"c0001",...}
//   POST /shutdown                request clean daemon exit
//   GET  /healthz                 liveness probe
//
// Routing is path-first: a known path with the wrong method answers
// 405 with an Allow header naming what would work; only unknown paths
// answer 404.
//
// Finished campaigns append to the ManifestIndex (index.jsonl), so
// `/campaigns` keeps answering for them across restarts; queued and
// running entries live only in memory (a killed daemon drops its queue,
// never its results). `handle()` is a pure request->response function
// so tests drive the whole HTTP surface without sockets.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <thread>

#include "service/http.hpp"
#include "service/index.hpp"

namespace animus::service {

/// Parsed + validated body of `POST /campaigns`.
struct CampaignSubmission {
  std::string bench;
  /// Registered attack-scenario name when the submission used the
  /// "scenario" field; bench is then "scenario:<name>". Unknown names
  /// are rejected at parse time with the list of valid ones.
  std::string scenario;
  std::uint64_t seed = 0;
  int jobs = 0;               ///< 0 = all hardware cores
  std::string backend;        ///< "" | "threads" | "process"
  int shards = 0;
  /// Trials per process-backend command frame. Accepted as a number in
  /// [0, kMaxBatch] or the string "auto"; 0 = auto-sized frames.
  int batch = 0;
  std::string tier = "auto";
  /// Capture the Chrome trace of the representative trial (index 0) and
  /// store it in the record for `GET /campaigns/<id>/trace`. Off by
  /// default: a full trace of one trial is ~100x the CSV artifact.
  bool trace = false;

  /// Validate every field a bad submission could smuggle past the
  /// campaign runner (which exits the process on an unknown backend —
  /// acceptable for a CLI, fatal for a daemon). On failure returns
  /// nullopt and sets `*error`.
  static std::optional<CampaignSubmission> parse(std::string_view json, std::string* error);
};

class CampaignDaemon {
 public:
  struct Options {
    std::string index_path;   ///< index.jsonl location (required)
    /// Milliseconds timestamp source for SSE heartbeats; injectable so
    /// recorded-request tests stay deterministic. Defaults to a
    /// steady-clock-since-start reading.
    std::function<double()> now_ms;
    std::size_t keyframe_every = 10;  ///< SSE metrics keyframe cadence
  };

  explicit CampaignDaemon(Options options);
  ~CampaignDaemon();

  CampaignDaemon(const CampaignDaemon&) = delete;
  CampaignDaemon& operator=(const CampaignDaemon&) = delete;

  /// Load the index and launch the scheduler thread.
  void start();

  /// Drain-stop: finishes the running campaign, abandons the queue.
  void stop();

  /// The full HTTP surface; give to HttpServer or call directly.
  HttpResponse handle(const HttpRequest& req);

  /// Feeds `GET /events` connections.
  [[nodiscard]] SseHub& hub() { return hub_; }

  /// True once POST /shutdown was received.
  [[nodiscard]] bool shutdown_requested() const;

  /// Queue depth + running state (tests).
  [[nodiscard]] std::size_t pending() const;

  /// Block until the queue is empty and nothing is running (tests).
  void drain();

 private:
  struct Queued {
    std::string id;
    CampaignSubmission sub;
  };

  HttpResponse handle_submit(const HttpRequest& req);
  HttpResponse handle_list() const;
  HttpResponse handle_get(std::string_view id) const;
  HttpResponse handle_metrics(std::string_view id) const;
  HttpResponse handle_trace(std::string_view id) const;
  HttpResponse handle_profile(std::string_view id) const;
  void scheduler_loop();
  void run_one(const Queued& q);
  std::string list_json_locked() const;

  Options options_;
  ManifestIndex index_;
  SseHub hub_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Queued> queue_;
  std::optional<Queued> running_;
  std::size_t next_id_ = 1;
  bool stopping_ = false;
  bool shutdown_requested_ = false;
  std::thread scheduler_;
  std::chrono::steady_clock::time_point epoch_;
};

}  // namespace animus::service
