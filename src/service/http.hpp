// Dependency-free HTTP/1.1 + SSE server for the campaign daemon.
//
// The service's observability surface is three GET endpoints and one
// POST, all tiny JSON bodies — a full HTTP stack would be almost all
// dead weight. This server parses exactly what it needs (request line,
// Content-Length, body), answers with Connection: close, and supports
// one streaming shape: a handler that marks its response `sse` keeps
// the connection open and relays every frame an `SseHub` publishes
// until the client disconnects or the server stops.
//
// The split matters for testing: `HttpRequest` -> `HttpResponse` is a
// pure function of the daemon (CampaignDaemon::handle), so the
// recorded-request tests drive it directly and deterministically;
// HttpServer is only the socket plumbing around it, covered by one
// loopback smoke test.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <thread>
#include <utility>
#include <vector>

namespace animus::service {

struct HttpRequest {
  std::string method;  ///< "GET" | "POST" (anything else -> 405)
  std::string path;    ///< path only, e.g. "/campaigns/c0001/metrics"
  std::string body;    ///< POST payload

  /// Parse a raw request (request line + headers + optional body).
  /// nullopt until the request is complete (headers not finished, or
  /// fewer body bytes than Content-Length promised) or on malformed
  /// input (distinguished by `malformed`).
  static std::optional<HttpRequest> parse(std::string_view raw, bool* malformed);
};

struct HttpResponse {
  int status = 200;
  std::string content_type = "application/json";
  std::string body;
  bool sse = false;  ///< stream SseHub frames instead of `body`
  /// Extra headers ("Name: value", no CRLF), emitted between
  /// Content-Length and Connection. Empty for most responses, so the
  /// recorded-request byte expectations predating this field still hold;
  /// 405 responses carry their Allow header here.
  std::vector<std::pair<std::string, std::string>> headers;

  /// Full wire form: status line, headers, body. Deterministic — no
  /// Date header — so recorded-request tests can lock exact bytes.
  [[nodiscard]] std::string to_string() const;
};

[[nodiscard]] std::string_view status_text(int status);

/// One SSE frame: "event: <event>\ndata: <data>\n\n". `data` must be a
/// single line (the service only publishes single-line JSON).
[[nodiscard]] std::string sse_event(std::string_view event, std::string_view data);

/// Broadcast hub for SSE frames. Publishers never block: each
/// subscriber owns a bounded queue, and a subscriber that stops reading
/// loses oldest-first (counted), exactly like TelemetryStreamer's
/// bounded emit queue.
class SseHub {
 public:
  struct Subscription {
    std::mutex mu;
    std::condition_variable cv;
    std::deque<std::string> frames;
    std::size_t dropped = 0;
    bool closed = false;

    /// Next frame, or nullopt once closed and drained.
    std::optional<std::string> next();
  };

  std::shared_ptr<Subscription> subscribe();
  void unsubscribe(const std::shared_ptr<Subscription>& sub);

  /// Enqueue `frame` to every live subscriber.
  void publish(const std::string& frame);

  /// Wake every subscriber with closed=true (server shutdown).
  void close_all();

  [[nodiscard]] std::size_t subscriber_count() const;

  static constexpr std::size_t kMaxQueuedFrames = 1024;

 private:
  mutable std::mutex mu_;
  std::vector<std::shared_ptr<Subscription>> subs_;
};

/// Threaded accept loop over a loopback listen socket. One thread per
/// connection (connections are few: a dashboard, a submitter, CI curl).
class HttpServer {
 public:
  using Handler = std::function<HttpResponse(const HttpRequest&)>;

  /// `hub` feeds SSE connections; may be null when no handler ever
  /// returns an sse response.
  HttpServer(Handler handler, SseHub* hub) : handler_(std::move(handler)), hub_(hub) {}
  ~HttpServer() { stop(); }

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Bind 127.0.0.1:`port` (0 = ephemeral) and start accepting.
  bool start(int port);
  void stop();

  /// Bound port (after start()).
  [[nodiscard]] int port() const { return port_; }

 private:
  void accept_loop();
  void serve(int client);

  Handler handler_;
  SseHub* hub_;
  int listen_fd_ = -1;
  int port_ = 0;
  std::atomic<bool> stopping_{false};
  std::thread acceptor_;
  std::mutex workers_mu_;
  std::vector<std::thread> workers_;
};

}  // namespace animus::service
