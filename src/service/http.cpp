#include "service/http.hpp"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <cstring>

#if !defined(_WIN32)
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>
#endif

namespace animus::service {

std::optional<HttpRequest> HttpRequest::parse(std::string_view raw, bool* malformed) {
  if (malformed != nullptr) *malformed = false;
  // Headers end at the first blank line; accept bare-\n framing too so
  // hand-written test fixtures don't need \r\n.
  std::size_t head_end = raw.find("\r\n\r\n");
  std::size_t body_at = head_end + 4;
  if (head_end == std::string_view::npos) {
    head_end = raw.find("\n\n");
    body_at = head_end + 2;
    if (head_end == std::string_view::npos) return std::nullopt;  // incomplete
  }
  const std::string_view head = raw.substr(0, head_end);
  const std::size_t line_end = std::min(head.find('\r'), head.find('\n'));
  const std::string_view request_line = head.substr(0, line_end);

  HttpRequest req;
  const std::size_t sp1 = request_line.find(' ');
  const std::size_t sp2 = sp1 == std::string_view::npos
                              ? std::string_view::npos
                              : request_line.find(' ', sp1 + 1);
  if (sp1 == std::string_view::npos || sp2 == std::string_view::npos) {
    if (malformed != nullptr) *malformed = true;
    return std::nullopt;
  }
  req.method = std::string(request_line.substr(0, sp1));
  req.path = std::string(request_line.substr(sp1 + 1, sp2 - sp1 - 1));
  if (const auto q = req.path.find('?'); q != std::string::npos) req.path.resize(q);

  // Content-Length (case-insensitive scan; the only header we honor).
  std::size_t content_length = 0;
  std::size_t pos = 0;
  while (pos < head.size()) {
    std::size_t eol = head.find('\n', pos);
    if (eol == std::string_view::npos) eol = head.size();
    std::string line(head.substr(pos, eol - pos));
    std::transform(line.begin(), line.end(), line.begin(),
                   [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
    if (line.rfind("content-length:", 0) == 0) {
      content_length = std::strtoull(line.c_str() + 15, nullptr, 10);
    }
    pos = eol + 1;
  }
  if (raw.size() - body_at < content_length) return std::nullopt;  // body incomplete
  req.body = std::string(raw.substr(body_at, content_length));
  return req;
}

std::string_view status_text(int status) {
  switch (status) {
    case 200: return "OK";
    case 202: return "Accepted";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    default: return "Internal Server Error";
  }
}

std::string HttpResponse::to_string() const {
  std::string out = "HTTP/1.1 " + std::to_string(status) + " ";
  out += status_text(status);
  out += "\r\nContent-Type: ";
  out += content_type;
  out += "\r\nContent-Length: " + std::to_string(body.size());
  for (const auto& [name, value] : headers) {
    out += "\r\n" + name + ": " + value;
  }
  out += "\r\nConnection: close\r\n\r\n";
  out += body;
  return out;
}

std::string sse_event(std::string_view event, std::string_view data) {
  std::string out = "event: ";
  out += event;
  out += "\ndata: ";
  out += data;
  out += "\n\n";
  return out;
}

// ------------------------------------------------------------------ SseHub

std::optional<std::string> SseHub::Subscription::next() {
  std::unique_lock<std::mutex> lock{mu};
  cv.wait(lock, [this] { return closed || !frames.empty(); });
  if (frames.empty()) return std::nullopt;  // closed and drained
  std::string frame = std::move(frames.front());
  frames.pop_front();
  return frame;
}

std::shared_ptr<SseHub::Subscription> SseHub::subscribe() {
  auto sub = std::make_shared<Subscription>();
  std::lock_guard<std::mutex> lock{mu_};
  subs_.push_back(sub);
  return sub;
}

void SseHub::unsubscribe(const std::shared_ptr<Subscription>& sub) {
  std::lock_guard<std::mutex> lock{mu_};
  subs_.erase(std::remove(subs_.begin(), subs_.end(), sub), subs_.end());
}

void SseHub::publish(const std::string& frame) {
  std::vector<std::shared_ptr<Subscription>> subs;
  {
    std::lock_guard<std::mutex> lock{mu_};
    subs = subs_;
  }
  for (auto& sub : subs) {
    {
      std::lock_guard<std::mutex> lock{sub->mu};
      if (sub->closed) continue;
      if (sub->frames.size() >= kMaxQueuedFrames) {
        sub->frames.pop_front();
        ++sub->dropped;
      }
      sub->frames.push_back(frame);
    }
    sub->cv.notify_one();
  }
}

void SseHub::close_all() {
  std::vector<std::shared_ptr<Subscription>> subs;
  {
    std::lock_guard<std::mutex> lock{mu_};
    subs = subs_;
  }
  for (auto& sub : subs) {
    {
      std::lock_guard<std::mutex> lock{sub->mu};
      sub->closed = true;
    }
    sub->cv.notify_all();
  }
}

std::size_t SseHub::subscriber_count() const {
  std::lock_guard<std::mutex> lock{mu_};
  return subs_.size();
}

// --------------------------------------------------------------- HttpServer

#if !defined(_WIN32)

namespace {

bool send_all(int fd, std::string_view data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n =
        ::send(fd, data.data() + off, data.size() - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

bool HttpServer::start(int port) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) return false;
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(listen_fd_, 16) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  socklen_t len = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);
  stopping_.store(false);
  acceptor_ = std::thread([this] { accept_loop(); });
  return true;
}

void HttpServer::stop() {
  if (listen_fd_ < 0 && !acceptor_.joinable()) return;
  stopping_.store(true);
  if (listen_fd_ >= 0) {
    ::shutdown(listen_fd_, SHUT_RDWR);
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  if (hub_ != nullptr) hub_->close_all();  // wake SSE writers
  if (acceptor_.joinable()) acceptor_.join();
  std::vector<std::thread> workers;
  {
    std::lock_guard<std::mutex> lock{workers_mu_};
    workers = std::move(workers_);
  }
  for (auto& t : workers) {
    if (t.joinable()) t.join();
  }
}

void HttpServer::accept_loop() {
  while (!stopping_.load()) {
    const int client = ::accept(listen_fd_, nullptr, nullptr);
    if (client < 0) {
      if (errno == EINTR) continue;
      break;  // listen socket closed by stop()
    }
    std::lock_guard<std::mutex> lock{workers_mu_};
    workers_.emplace_back([this, client] { serve(client); });
  }
}

void HttpServer::serve(int client) {
  std::string raw;
  std::optional<HttpRequest> req;
  bool malformed = false;
  char buf[4096];
  while (!req && !malformed && raw.size() < 1 << 20) {
    const ssize_t n = ::recv(client, buf, sizeof(buf), 0);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      break;
    }
    raw.append(buf, static_cast<std::size_t>(n));
    req = HttpRequest::parse(raw, &malformed);
  }
  if (!req) {
    if (malformed) {
      HttpResponse bad;
      bad.status = 400;
      bad.body = "{\"error\":\"malformed request\"}\n";
      send_all(client, bad.to_string());
    }
    ::close(client);
    return;
  }

  const HttpResponse res = handler_(*req);
  if (!res.sse || hub_ == nullptr) {
    send_all(client, res.to_string());
    ::close(client);
    return;
  }

  // SSE: headers, then relay hub frames until the client hangs up or
  // the hub closes (daemon shutdown). No Content-Length — the stream
  // ends when the connection does.
  if (!send_all(client,
                "HTTP/1.1 200 OK\r\nContent-Type: text/event-stream\r\n"
                "Cache-Control: no-cache\r\nConnection: close\r\n\r\n"
                ": connected\n\n")) {
    ::close(client);
    return;
  }
  auto sub = hub_->subscribe();
  while (auto frame = sub->next()) {
    if (!send_all(client, *frame)) break;  // client went away
  }
  hub_->unsubscribe(sub);
  ::close(client);
}

#else  // _WIN32: the daemon entry point refuses to start; keep links happy.

bool HttpServer::start(int) { return false; }
void HttpServer::stop() {}
void HttpServer::accept_loop() {}
void HttpServer::serve(int) {}

#endif

}  // namespace animus::service
