// Minimal JSON field extraction for the campaign service.
//
// The service's wire bodies (submissions, index records) are flat JSON
// objects produced by our own emitters, so a full parser is overkill:
// `json_field` pulls the raw token after `"key":` — string contents
// unescaped, numbers/bools verbatim — exactly the scheme RunManifest's
// parse() uses. Nested objects are not supported (and not produced).
#pragma once

#include <cstdint>
#include <cstdlib>
#include <optional>
#include <string>
#include <string_view>

namespace animus::service {

/// Raw token after `"key":`. Strings are unescaped (\", \\, \n, \t,
/// \uXXXX for control characters); numbers and bools come back verbatim.
/// Empty optional when the key is absent.
inline std::optional<std::string> json_field(std::string_view json, std::string_view key) {
  const std::string needle = "\"" + std::string(key) + "\":";
  auto pos = json.find(needle);
  if (pos == std::string_view::npos) return std::nullopt;
  pos += needle.size();
  while (pos < json.size() && (json[pos] == ' ' || json[pos] == '\n')) ++pos;
  if (pos >= json.size()) return std::nullopt;
  if (json[pos] == '"') {
    std::string out;
    for (++pos; pos < json.size() && json[pos] != '"'; ++pos) {
      if (json[pos] == '\\' && pos + 1 < json.size()) {
        ++pos;
        switch (json[pos]) {
          case 'n': out += '\n'; break;
          case 't': out += '\t'; break;
          case 'u': {
            // Only \u00XX is ever emitted (control characters).
            if (pos + 4 < json.size()) {
              const std::string hex(json.substr(pos + 1, 4));
              out += static_cast<char>(std::strtoul(hex.c_str(), nullptr, 16));
              pos += 4;
            }
            break;
          }
          default: out += json[pos];
        }
      } else {
        out += json[pos];
      }
    }
    return out;
  }
  std::string out;
  while (pos < json.size() && json[pos] != ',' && json[pos] != '\n' && json[pos] != '}') {
    out += json[pos++];
  }
  return out;
}

inline std::uint64_t json_u64(std::string_view json, std::string_view key,
                              std::uint64_t fallback = 0) {
  const auto v = json_field(json, key);
  return v ? std::strtoull(v->c_str(), nullptr, 10) : fallback;
}

inline double json_double(std::string_view json, std::string_view key, double fallback = 0.0) {
  const auto v = json_field(json, key);
  return v ? std::strtod(v->c_str(), nullptr) : fallback;
}

}  // namespace animus::service
