// Append-only manifest index for the campaign service.
//
// Every finished campaign appends one JSON line to `index.jsonl`, so
// `GET /campaigns` can answer for runs that finished before the daemon
// was last restarted — the index, not daemon memory, is the durable
// result store. Records are flat JSON objects:
//
//   {"kind":"campaign","id":"c0001","bench":"fig07","seed":42,...,
//    "csv":"D (ms),min,...","status":"done"}
//
// The CSV artifact itself is inlined (escaped) because campaign tables
// are small; a consumer gets the full result from one GET without a
// second artifact fetch.
//
// The loader mirrors the checkpoint loader's crash tolerance: a torn
// final line (daemon killed mid-append) is ignored, everything before
// it loads normally. Only fields that are pure functions of the
// campaign (no timestamps beyond wall_ms, which is persisted verbatim)
// go into a record, so a reload reproduces `GET /campaigns` byte-for-
// byte — the restart-identity contract the tests lock.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace animus::service {

struct CampaignRecord {
  std::string id;             ///< "c0001" — assigned at submission
  std::string bench;          ///< campaign bench name ("fig07", ...)
  std::uint64_t seed = 0;     ///< root seed of the sweep
  int jobs = 0;               ///< worker threads (0 = all cores)
  std::string backend;        ///< "" = threads
  int shards = 0;             ///< process-backend workers
  /// Trials per process-backend command frame (0 = auto-sized). Emitted
  /// only when non-zero, so records written before batching existed
  /// parse and re-serialize untouched.
  int batch = 0;
  std::string tier = "auto";  ///< trial tier
  std::size_t trials = 0;     ///< trials run
  std::size_t errors = 0;     ///< failed trials
  double wall_ms = 0.0;       ///< sweep wall-clock
  std::string csv;            ///< result table, to_csv() bytes
  /// Chrome trace JSON of the representative trial ("" = campaign ran
  /// without trace capture). Emitted only when non-empty, so records
  /// written before this field existed parse and re-serialize untouched.
  std::string trace;
  /// Deterministic span-profile JSON of the whole sweep ("" = profiling
  /// was off). Emitted only when non-empty, like `trace`.
  std::string profile;
  std::string status;         ///< "done" | "error"

  /// One JSON line (no trailing newline).
  [[nodiscard]] std::string to_json() const;

  /// Inverse of to_json(); nullopt when `line` is not a campaign record.
  static std::optional<CampaignRecord> parse(std::string_view line);
};

class ManifestIndex {
 public:
  explicit ManifestIndex(std::string path) : path_(std::move(path)) {}

  /// Read every record already in the file. A missing file is an empty
  /// index (fresh daemon); a torn final line is dropped. Clears any
  /// previously loaded state, so a reload observes exactly the file.
  void load();

  /// Append one record and flush, so the record survives a crash
  /// immediately after the campaign finishes.
  bool append(const CampaignRecord& rec);

  [[nodiscard]] const std::vector<CampaignRecord>& records() const { return records_; }
  [[nodiscard]] const std::string& path() const { return path_; }

  /// Largest numeric suffix among loaded "c<NNNN>" ids (0 when empty),
  /// so a restarted daemon continues the id sequence instead of reusing
  /// ids that are already durable.
  [[nodiscard]] std::size_t max_id() const;

 private:
  std::string path_;
  std::vector<CampaignRecord> records_;
};

}  // namespace animus::service
