// Campaign bench registry: the sweep + table logic of the paper-figure
// benches, factored out of their main()s so two callers share one
// definition byte-for-byte:
//
//   - the CLI binaries (bench/fig07_capture_rate, ...) parse flags,
//     call run(), print the table and their commentary;
//   - the campaign daemon schedules submissions onto the same run()
//     with a synthetic BenchArgs.
//
// That sharing is the service's core correctness contract: a campaign
// submitted over HTTP must produce a CSV byte-identical to the same
// bench invoked directly with --csv, because both are
// `output.table.to_csv()` of the same deterministic sweep.
#pragma once

#include <cstddef>
#include <string_view>
#include <vector>

#include "metrics/table.hpp"
#include "runner/bench_cli.hpp"

namespace animus::service {

struct CampaignOutput {
  metrics::Table table;      ///< canonical result; to_csv() is the artifact
  std::size_t trials = 0;    ///< trials swept
  std::size_t errors = 0;    ///< failed trials
  double wall_ms = 0.0;      ///< sweep wall-clock
  bool ok = true;            ///< errors == 0
};

struct CampaignBench {
  const char* name;          ///< submission name, e.g. "fig07"
  const char* description;
  std::size_t trials;        ///< sweep size (fixed per bench)
  CampaignOutput (*run)(const runner::BenchArgs& args);
};

/// Every bench a campaign submission may name.
const std::vector<CampaignBench>& campaign_benches();

/// Lookup by name; nullptr when unknown.
const CampaignBench* find_campaign_bench(std::string_view name);

}  // namespace animus::service
