// Campaign bench registry: the sweep + table logic of the paper-figure
// benches, factored out of their main()s so two callers share one
// definition byte-for-byte:
//
//   - the CLI binaries (bench/fig07_capture_rate, ...) parse flags,
//     call run(), print the table and their commentary;
//   - the campaign daemon schedules submissions onto the same run()
//     with a synthetic BenchArgs.
//
// That sharing is the service's core correctness contract: a campaign
// submitted over HTTP must produce a CSV byte-identical to the same
// bench invoked directly with --csv, because both are
// `output.table.to_csv()` of the same deterministic sweep.
#pragma once

#include <cstddef>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "metrics/table.hpp"
#include "runner/bench_cli.hpp"

namespace animus::core {
struct AttackScenario;
}

namespace animus::service {

struct CampaignOutput {
  metrics::Table table;      ///< canonical result; to_csv() is the artifact
  std::size_t trials = 0;    ///< trials swept
  std::size_t errors = 0;    ///< failed trials
  double wall_ms = 0.0;      ///< sweep wall-clock
  bool ok = true;            ///< errors == 0
};

struct CampaignBench {
  std::string name;          ///< submission name, e.g. "fig07" or "scenario:tapjacking"
  std::string description;
  std::size_t trials;        ///< sweep size (fixed per bench)
  std::function<CampaignOutput(const runner::BenchArgs& args)> run;
};

/// Every bench a campaign submission may name: the hand-written paper
/// figures plus one "scenario:<name>" bench per registered attack
/// scenario (core/attack_scenario.hpp), so campaignd sweeps any pack
/// through the same scheduler without per-attack plumbing.
const std::vector<CampaignBench>& campaign_benches();

/// Lookup by name; nullptr when unknown.
const CampaignBench* find_campaign_bench(std::string_view name);

/// Run one registered scenario's canonical campaign grid: every config
/// from `campaign_configs()` dispatched through `run_encoded` on the
/// shared campaign runner (so --jobs/--backend/--shards/--batch and
/// checkpointing all apply), tabulated with core::scenario_table(). The
/// CSV is byte-identical however the sweep is executed; `args.tier`
/// applies only to configs that carry a `tier` field.
CampaignOutput run_scenario_campaign(const core::AttackScenario& scenario,
                                     const runner::BenchArgs& args);

}  // namespace animus::service
