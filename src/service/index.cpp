#include "service/index.hpp"

#include <cstdio>
#include <cstdlib>

#include "obs/metrics.hpp"
#include "service/json_util.hpp"

namespace animus::service {
namespace {

void field_str(std::string& out, const char* key, std::string_view value) {
  out += ",\"";
  out += key;
  out += "\":\"";
  obs::append_json_escaped(out, value);
  out += "\"";
}

void field_u64(std::string& out, const char* key, std::uint64_t value) {
  out += ",\"";
  out += key;
  out += "\":" + std::to_string(value);
}

}  // namespace

std::string CampaignRecord::to_json() const {
  std::string out = "{\"kind\":\"campaign\"";
  field_str(out, "id", id);
  field_str(out, "bench", bench);
  field_u64(out, "seed", seed);
  field_u64(out, "jobs", static_cast<std::uint64_t>(jobs));
  field_str(out, "backend", backend);
  field_u64(out, "shards", static_cast<std::uint64_t>(shards));
  if (batch != 0) field_u64(out, "batch", static_cast<std::uint64_t>(batch));
  field_str(out, "tier", tier);
  field_u64(out, "trials", trials);
  field_u64(out, "errors", errors);
  {
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%.3f", wall_ms);
    out += ",\"wall_ms\":";
    out += buf;
  }
  field_str(out, "csv", csv);
  // Optional artifacts: skipped entirely when empty so pre-existing
  // records round-trip byte-identically. "status" stays the last field
  // (the torn-line detector keys on it).
  if (!trace.empty()) field_str(out, "trace", trace);
  if (!profile.empty()) field_str(out, "profile", profile);
  field_str(out, "status", status);
  out += "}";
  return out;
}

std::optional<CampaignRecord> CampaignRecord::parse(std::string_view line) {
  if (json_field(line, "kind").value_or("") != "campaign") return std::nullopt;
  const auto id = json_field(line, "id");
  const auto bench = json_field(line, "bench");
  if (!id || id->empty() || !bench || bench->empty()) return std::nullopt;
  // A torn final line is detectable by its missing tail: "status" is
  // always the last field written, so require it for a complete record.
  const auto status = json_field(line, "status");
  if (!status || line.find('}') == std::string_view::npos) return std::nullopt;
  CampaignRecord rec;
  rec.id = *id;
  rec.bench = *bench;
  rec.seed = json_u64(line, "seed");
  rec.jobs = static_cast<int>(json_u64(line, "jobs"));
  rec.backend = json_field(line, "backend").value_or("");
  rec.shards = static_cast<int>(json_u64(line, "shards"));
  rec.batch = static_cast<int>(json_u64(line, "batch"));
  rec.tier = json_field(line, "tier").value_or("auto");
  rec.trials = json_u64(line, "trials");
  rec.errors = json_u64(line, "errors");
  rec.wall_ms = json_double(line, "wall_ms");
  rec.csv = json_field(line, "csv").value_or("");
  rec.trace = json_field(line, "trace").value_or("");
  rec.profile = json_field(line, "profile").value_or("");
  rec.status = *status;
  return rec;
}

void ManifestIndex::load() {
  records_.clear();
  std::FILE* f = std::fopen(path_.c_str(), "rb");
  if (f == nullptr) return;  // fresh daemon: nothing durable yet
  std::string content;
  char buf[4096];
  for (std::size_t n = std::fread(buf, 1, sizeof(buf), f); n > 0;
       n = std::fread(buf, 1, sizeof(buf), f)) {
    content.append(buf, n);
  }
  std::fclose(f);
  std::size_t start = 0;
  while (start < content.size()) {
    const std::size_t nl = content.find('\n', start);
    if (nl == std::string::npos) break;  // torn final line: drop it
    const std::string_view line = std::string_view(content).substr(start, nl - start);
    if (auto rec = CampaignRecord::parse(line)) records_.push_back(std::move(*rec));
    start = nl + 1;
  }
}

bool ManifestIndex::append(const CampaignRecord& rec) {
  std::FILE* f = std::fopen(path_.c_str(), "ab");
  if (f == nullptr) return false;
  const std::string line = rec.to_json() + "\n";
  const bool ok = std::fwrite(line.data(), 1, line.size(), f) == line.size();
  std::fflush(f);
  std::fclose(f);
  if (ok) records_.push_back(rec);
  return ok;
}

std::size_t ManifestIndex::max_id() const {
  std::size_t max = 0;
  for (const auto& rec : records_) {
    if (rec.id.size() < 2 || rec.id[0] != 'c') continue;
    const std::size_t n = std::strtoull(rec.id.c_str() + 1, nullptr, 10);
    if (n > max) max = n;
  }
  return max;
}

}  // namespace animus::service
