#include "service/daemon.hpp"

#include <algorithm>
#include <cstdio>
#include <memory>

#include "core/attack_scenario.hpp"
#include "obs/metrics.hpp"
#include "obs/profile.hpp"
#include "obs/stream.hpp"
#include "obs/trace_capture.hpp"
#include "runner/backend.hpp"
#include "service/benches.hpp"
#include "service/json_util.hpp"
#include "sim/chrome_trace.hpp"

namespace animus::service {
namespace {

HttpResponse json_response(int status, std::string body) {
  HttpResponse res;
  res.status = status;
  res.body = std::move(body);
  return res;
}

HttpResponse error_response(int status, std::string_view message) {
  std::string body = "{\"error\":\"";
  obs::append_json_escaped(body, message);
  body += "\"}\n";
  return json_response(status, std::move(body));
}

/// A known path hit with the wrong method: 405 plus the Allow header
/// required by RFC 9110 (so a client can discover what would work).
HttpResponse method_not_allowed(const char* allow) {
  HttpResponse res = error_response(405, "method not allowed");
  res.headers.emplace_back("Allow", allow);
  return res;
}

/// Placeholder record for a queued/running campaign, so `/campaigns`
/// renders every lifecycle stage in the one record shape.
CampaignRecord pending_record(const std::string& id, const CampaignSubmission& sub,
                              const char* status) {
  CampaignRecord rec;
  rec.id = id;
  rec.bench = sub.bench;
  rec.seed = sub.seed;
  rec.jobs = sub.jobs;
  rec.backend = sub.backend;
  rec.shards = sub.shards;
  rec.batch = sub.batch;
  rec.tier = sub.tier;
  if (const CampaignBench* b = find_campaign_bench(sub.bench)) rec.trials = b->trials;
  rec.status = status;
  return rec;
}

}  // namespace

std::optional<CampaignSubmission> CampaignSubmission::parse(std::string_view json,
                                                            std::string* error) {
  CampaignSubmission sub;
  const auto scenario = json_field(json, "scenario");
  const auto bench = json_field(json, "bench");
  if (scenario && !scenario->empty()) {
    if (bench && !bench->empty()) {
      *error = "specify bench or scenario, not both";
      return std::nullopt;
    }
    if (core::find_scenario(*scenario) == nullptr) {
      std::string valid;
      for (const core::AttackScenario* s : core::scenario_registry()) {
        if (!valid.empty()) valid += ", ";
        valid += s->name;
      }
      *error = "unknown scenario: " + *scenario + " (valid: " + valid + ")";
      return std::nullopt;
    }
    sub.scenario = *scenario;
    sub.bench = "scenario:" + *scenario;
  } else {
    if (!bench || bench->empty()) {
      *error = "missing required field: bench (or scenario)";
      return std::nullopt;
    }
    sub.bench = *bench;
    if (find_campaign_bench(sub.bench) == nullptr) {
      *error = "unknown bench: " + sub.bench;
      return std::nullopt;
    }
  }
  sub.seed = json_u64(json, "seed");
  sub.jobs = static_cast<int>(json_u64(json, "jobs"));
  if (sub.jobs < 0) {
    *error = "jobs must be >= 0";
    return std::nullopt;
  }
  sub.backend = json_field(json, "backend").value_or("");
  // The campaign runner exits the whole process on an unknown backend —
  // fine for a CLI, fatal for a daemon — so reject at submit time.
  std::string backend_error;
  if (runner::make_backend(sub.backend, {}, 1, &backend_error) == nullptr) {
    *error = backend_error;
    return std::nullopt;
  }
  sub.shards = static_cast<int>(json_u64(json, "shards"));
  if (sub.shards < 0) {
    *error = "shards must be >= 0";
    return std::nullopt;
  }
  if (const auto batch = json_field(json, "batch")) {
    if (*batch == "auto") {
      sub.batch = 0;
    } else {
      char* end = nullptr;
      const long v = std::strtol(batch->c_str(), &end, 10);
      if (end == batch->c_str() || *end != '\0' || v < 0 ||
          v > runner::ProcessShardBackend::kMaxBatch) {
        *error = "batch must be \"auto\" or an integer in [0, " +
                 std::to_string(runner::ProcessShardBackend::kMaxBatch) + "]";
        return std::nullopt;
      }
      sub.batch = static_cast<int>(v);
    }
  }
  sub.tier = json_field(json, "tier").value_or("auto");
  if (sub.tier != "auto" && sub.tier != "sim" && sub.tier != "analytic") {
    *error = "tier must be auto, sim or analytic";
    return std::nullopt;
  }
  const std::string trace = json_field(json, "trace").value_or("false");
  if (trace != "true" && trace != "false") {
    *error = "trace must be true or false";
    return std::nullopt;
  }
  sub.trace = trace == "true";
  return sub;
}

CampaignDaemon::CampaignDaemon(Options options)
    : options_(std::move(options)),
      index_(options_.index_path),
      epoch_(std::chrono::steady_clock::now()) {
  if (!options_.now_ms) {
    options_.now_ms = [this] {
      return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() -
                                                       epoch_)
          .count();
    };
  }
}

CampaignDaemon::~CampaignDaemon() { stop(); }

void CampaignDaemon::start() {
  index_.load();
  next_id_ = index_.max_id() + 1;
  stopping_ = false;
  scheduler_ = std::thread([this] { scheduler_loop(); });
}

void CampaignDaemon::stop() {
  {
    std::lock_guard<std::mutex> lock{mu_};
    if (stopping_ && !scheduler_.joinable()) return;
    stopping_ = true;
  }
  cv_.notify_all();
  if (scheduler_.joinable()) scheduler_.join();
  hub_.close_all();
}

bool CampaignDaemon::shutdown_requested() const {
  std::lock_guard<std::mutex> lock{mu_};
  return shutdown_requested_;
}

std::size_t CampaignDaemon::pending() const {
  std::lock_guard<std::mutex> lock{mu_};
  return queue_.size() + (running_ ? 1 : 0);
}

void CampaignDaemon::drain() {
  std::unique_lock<std::mutex> lock{mu_};
  cv_.wait(lock, [this] { return queue_.empty() && !running_; });
}

HttpResponse CampaignDaemon::handle(const HttpRequest& req) {
  const std::string_view path = req.path;
  // Path-first routing: resolve what the path IS before checking how it
  // was asked for, so a known path with the wrong method is 405 (with
  // Allow) and only genuinely unknown paths are 404.
  if (path == "/healthz") {
    if (req.method != "GET") return method_not_allowed("GET");
    return json_response(200, "{\"ok\":true}\n");
  }
  if (path == "/campaigns") {
    if (req.method == "GET") return handle_list();
    if (req.method == "POST") return handle_submit(req);
    return method_not_allowed("GET, POST");
  }
  if (path == "/scenarios") {
    if (req.method != "GET") return method_not_allowed("GET");
    std::string body = "{\"scenarios\":[";
    bool first = true;
    for (const core::AttackScenario* s : core::scenario_registry()) {
      if (!first) body += ",";
      first = false;
      body += "{\"name\":\"";
      obs::append_json_escaped(body, s->name);
      body += "\",\"description\":\"";
      obs::append_json_escaped(body, s->description);
      body += s->analytic_eligible ? "\",\"analytic_eligible\":true}"
                                   : "\",\"analytic_eligible\":false}";
    }
    body += "]}\n";
    return json_response(200, std::move(body));
  }
  if (path == "/events") {
    if (req.method != "GET") return method_not_allowed("GET");
    HttpResponse res;
    res.sse = true;
    return res;
  }
  if (path == "/shutdown") {
    if (req.method != "POST") return method_not_allowed("POST");
    std::lock_guard<std::mutex> lock{mu_};
    shutdown_requested_ = true;
    return json_response(200, "{\"ok\":true,\"shutting_down\":true}\n");
  }
  if (path.rfind("/campaigns/", 0) == 0) {
    const std::string_view rest = path.substr(11);
    const auto slash = rest.find('/');
    if (slash == std::string_view::npos) {
      if (req.method != "GET") return method_not_allowed("GET");
      return handle_get(rest);
    }
    const std::string_view id = rest.substr(0, slash);
    const std::string_view leaf = rest.substr(slash + 1);
    if (leaf == "metrics" || leaf == "trace" || leaf == "profile") {
      if (req.method != "GET") return method_not_allowed("GET");
      if (leaf == "metrics") return handle_metrics(id);
      if (leaf == "trace") return handle_trace(id);
      return handle_profile(id);
    }
    return error_response(404, "not found");
  }
  return error_response(404, "not found");
}

HttpResponse CampaignDaemon::handle_submit(const HttpRequest& req) {
  std::string error;
  const auto sub = CampaignSubmission::parse(req.body, &error);
  if (!sub) return error_response(400, error);

  std::string id;
  {
    std::lock_guard<std::mutex> lock{mu_};
    char buf[16];
    std::snprintf(buf, sizeof(buf), "c%04zu", next_id_++);
    id = buf;
    queue_.push_back({id, *sub});
  }
  cv_.notify_all();
  hub_.publish(sse_event("campaign", pending_record(id, *sub, "queued").to_json()));
  return json_response(202, "{\"id\":\"" + id + "\",\"status\":\"queued\"}\n");
}

std::string CampaignDaemon::list_json_locked() const {
  std::string out = "{\"campaigns\":[";
  bool first = true;
  const auto add = [&](const std::string& json) {
    if (!first) out += ",";
    first = false;
    out += json;
  };
  for (const auto& rec : index_.records()) add(rec.to_json());
  if (running_) add(pending_record(running_->id, running_->sub, "running").to_json());
  for (const auto& q : queue_) add(pending_record(q.id, q.sub, "queued").to_json());
  out += "]}\n";
  return out;
}

HttpResponse CampaignDaemon::handle_list() const {
  std::lock_guard<std::mutex> lock{mu_};
  return json_response(200, list_json_locked());
}

HttpResponse CampaignDaemon::handle_get(std::string_view id) const {
  std::lock_guard<std::mutex> lock{mu_};
  for (const auto& rec : index_.records()) {
    if (rec.id == id) return json_response(200, rec.to_json() + "\n");
  }
  if (running_ && running_->id == id) {
    return json_response(200, pending_record(running_->id, running_->sub, "running").to_json() +
                                  "\n");
  }
  for (const auto& q : queue_) {
    if (q.id == id) {
      return json_response(200, pending_record(q.id, q.sub, "queued").to_json() + "\n");
    }
  }
  return error_response(404, "unknown campaign id");
}

HttpResponse CampaignDaemon::handle_metrics(std::string_view id) const {
  std::string status;
  {
    std::lock_guard<std::mutex> lock{mu_};
    for (const auto& rec : index_.records()) {
      if (rec.id == id) status = rec.status;
    }
    if (running_ && running_->id == id) status = "running";
    for (const auto& q : queue_) {
      if (q.id == id) status = "queued";
    }
  }
  if (status.empty()) return error_response(404, "unknown campaign id");
  // One campaign runs at a time, so the process-wide registry is the
  // live view of whatever the scheduler is (or was last) doing.
  std::string body = "{\"id\":\"";
  obs::append_json_escaped(body, id);
  body += "\",\"status\":\"" + status + "\",";
  body += obs::stream_fields(obs::global_registry().snapshot());
  body += "}\n";
  return json_response(200, std::move(body));
}

HttpResponse CampaignDaemon::handle_trace(std::string_view id) const {
  std::lock_guard<std::mutex> lock{mu_};
  for (const auto& rec : index_.records()) {
    if (rec.id != id) continue;
    if (rec.trace.empty()) {
      return error_response(404, "campaign ran without trace capture (submit with "
                                 "\"trace\":true)");
    }
    return json_response(200, rec.trace);
  }
  if ((running_ && running_->id == id) ||
      std::any_of(queue_.begin(), queue_.end(),
                  [&](const Queued& q) { return q.id == id; })) {
    return error_response(404, "campaign has not finished");
  }
  return error_response(404, "unknown campaign id");
}

HttpResponse CampaignDaemon::handle_profile(std::string_view id) const {
  std::lock_guard<std::mutex> lock{mu_};
  for (const auto& rec : index_.records()) {
    if (rec.id != id) continue;
    if (rec.profile.empty()) {
      return error_response(404, "no profile recorded for this campaign");
    }
    return json_response(200, rec.profile);
  }
  if ((running_ && running_->id == id) ||
      std::any_of(queue_.begin(), queue_.end(),
                  [&](const Queued& q) { return q.id == id; })) {
    return error_response(404, "campaign has not finished");
  }
  return error_response(404, "unknown campaign id");
}

void CampaignDaemon::scheduler_loop() {
  for (;;) {
    Queued q;
    {
      std::unique_lock<std::mutex> lock{mu_};
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (stopping_) return;
      q = queue_.front();
      queue_.pop_front();
      running_ = q;
    }
    hub_.publish(sse_event("campaign", pending_record(q.id, q.sub, "running").to_json()));
    run_one(q);
    {
      std::lock_guard<std::mutex> lock{mu_};
      running_.reset();
    }
    cv_.notify_all();
  }
}

void CampaignDaemon::run_one(const Queued& q) {
  const CampaignBench* bench = find_campaign_bench(q.sub.bench);
  if (bench == nullptr) return;  // validated at submit; defensive

  runner::BenchArgs args;
  args.csv = true;  // the canonical artifact is table.to_csv()
  args.run.root_seed = q.sub.seed;
  args.run.jobs = q.sub.jobs;
  args.backend = q.sub.backend;
  args.shards = q.sub.shards;
  args.batch = q.sub.batch;
  args.tier = q.sub.tier;

  // Live telemetry: every runner progress beat publishes one heartbeat
  // (throughput + ETA derived from options_.now_ms, so recorded tests
  // stay deterministic) and one delta-encoded metrics update (keyframe
  // first, then changed series only). The runner beats once per dispatch
  // chunk, so even a fast sweep gives subscribers a keyframe plus
  // several deltas.
  auto encoder = std::make_shared<obs::DeltaEncoder>(options_.keyframe_every);
  const std::string id = q.id;
  const double start_ms = options_.now_ms();
  args.run.progress = [this, encoder, id, start_ms](const runner::Progress& p) {
    const double t_ms = options_.now_ms();
    const double elapsed_s = (t_ms - start_ms) / 1000.0;
    const double rate = elapsed_s > 0.0 ? static_cast<double>(p.done) / elapsed_s : 0.0;
    const double eta_s =
        rate > 0.0 ? static_cast<double>(p.total - p.done) / rate : 0.0;
    char fields[320];
    std::snprintf(fields, sizeof(fields),
                  "{\"id\":\"%s\",\"t_ms\":%.3f,\"done\":%zu,\"total\":%zu,"
                  "\"trials_per_s\":%.3f,\"eta_s\":%.3f,\"errors\":%zu,"
                  "\"workers_busy\":%d,\"jobs\":%d}",
                  id.c_str(), t_ms, p.done, p.total, rate, eta_s, p.errors, p.workers_busy,
                  p.jobs);
    hub_.publish(sse_event("heartbeat", fields));
    std::string metrics = "{\"id\":\"" + id + "\",";
    metrics += encoder->encode(obs::global_registry().snapshot());
    metrics += "}";
    hub_.publish(sse_event("metrics", metrics));
  };

  // Every campaign is profiled: the sweep profiler is near-free when the
  // campaign's spans are cheap, and `GET /campaigns/<id>/profile` should
  // work without the submitter having opted in. Reset drops whatever the
  // previous campaign accumulated (one campaign runs at a time).
  obs::span_profiler().enable();
  obs::span_profiler().reset();
  if (q.sub.trace) {
    obs::trace_capture().reset();
    obs::trace_capture().arm(0);
  }

  CampaignRecord rec = pending_record(q.id, q.sub, "running");
  try {
    const CampaignOutput out = bench->run(args);
    rec.trials = out.trials;
    rec.errors = out.errors;
    rec.wall_ms = out.wall_ms;
    rec.csv = out.table.to_csv();
    rec.status = out.ok ? "done" : "error";
  } catch (const std::exception& e) {
    rec.status = "error";
    std::fprintf(stderr, "[campaignd] %s (%s) failed: %s\n", q.id.c_str(),
                 q.sub.bench.c_str(), e.what());
  }
  const obs::ProfileReport profile = obs::span_profiler().snapshot();
  rec.profile = obs::to_profile_json(profile);
  if (q.sub.trace) {
    if (obs::trace_capture().captured()) {
      rec.trace = sim::to_chrome_trace_json(obs::trace_capture().trace());
    }
    obs::trace_capture().reset();
  }

  {
    std::lock_guard<std::mutex> lock{mu_};
    if (!index_.append(rec)) {
      std::fprintf(stderr, "[campaignd] cannot append %s to %s\n", q.id.c_str(),
                   index_.path().c_str());
    }
  }
  // The done event must stay browsable: strip the inlined artifacts
  // (a trace can be megabytes) and splice in a top-3 self-time summary
  // consumers can render without a second fetch.
  CampaignRecord lite = rec;
  lite.trace.clear();
  lite.profile.clear();
  std::string event = lite.to_json();
  event.pop_back();  // '}'
  event += ",\"profile_summary\":" + obs::profile_summary_json(profile) + "}";
  hub_.publish(sse_event("campaign", event));
}

}  // namespace animus::service
