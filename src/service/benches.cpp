#include "service/benches.hpp"

#include <map>
#include <string>

#include "core/attack_scenario.hpp"
#include "core/tier.hpp"
#include "core/trial_session.hpp"
#include "device/registry.hpp"
#include "input/typist.hpp"
#include "metrics/stats.hpp"

namespace animus::service {
namespace {

// Grid shapes shared by both figures (paper Section VI-B).
const std::vector<int>& windows_ms() {
  static const std::vector<int> w = {50, 75, 100, 125, 150, 175, 200};
  return w;
}

std::size_t fig07_trials() { return windows_ms().size() * input::participant_panel().size(); }

constexpr std::size_t kFig08Reps = 4;  // participants averaged per device

std::size_t fig08_trials() {
  return windows_ms().size() * device::all_devices().size() * kFig08Reps;
}

/// Fig. 7 — capture rate vs D, box plot over the 30-participant panel.
CampaignOutput run_fig07(const runner::BenchArgs& args) {
  const auto panel = input::participant_panel();
  const auto devices = device::all_devices();
  const double paper_means[] = {61.0, 79.8, 86.7, 89.0, 91.0, 92.8, 92.8};
  const auto& windows = windows_ms();

  struct Trial {
    int d;
    std::size_t participant;
  };
  std::vector<Trial> trials;
  for (int d : windows)
    for (std::size_t p = 0; p < panel.size(); ++p) trials.push_back({d, p});

  const auto sw = runner::run_campaign(
      "fig07", trials,
      [&](const Trial& t, const runner::TrialContext& ctx) {
        core::CaptureTrialConfig c;
        c.profile = devices[t.participant % devices.size()];
        c.typist = panel[t.participant];
        c.attacking_window = sim::ms(t.d);
        c.touches = 100;  // 10 strings x 10 characters
        c.seed = ctx.seed;
        return core::TrialSession::local().run(c).rate * 100.0;
      },
      args);

  CampaignOutput out{
      metrics::Table({"D (ms)", "min", "Q1", "median", "Q3", "max", "mean", "paper mean"})};
  for (std::size_t di = 0; di < windows.size(); ++di) {
    const auto first = sw.results.begin() + static_cast<std::ptrdiff_t>(di * panel.size());
    const std::vector<double> rates(first, first + static_cast<std::ptrdiff_t>(panel.size()));
    const auto bp = metrics::box_plot(rates);
    out.table.add_row({metrics::fmt("%d", windows[di]), metrics::fmt("%.1f", bp.summary.min),
                       metrics::fmt("%.1f", bp.summary.q1),
                       metrics::fmt("%.1f", bp.summary.median),
                       metrics::fmt("%.1f", bp.summary.q3), metrics::fmt("%.1f", bp.summary.max),
                       metrics::fmt("%.1f", bp.mean), metrics::fmt("%.1f", paper_means[di])});
  }
  out.trials = trials.size();
  out.errors = sw.errors.size();
  out.wall_ms = sw.stats.wall_ms;
  out.ok = sw.ok();
  return out;
}

/// Fig. 8 — capture rate vs D grouped by Android version family.
CampaignOutput run_fig08(const runner::BenchArgs& args) {
  const auto panel = input::participant_panel();
  const auto devices = device::all_devices();
  const std::vector<std::string> families = {"Android 8.x", "Android 9.x", "Android 10.0",
                                             "Android 11.0"};
  const auto& windows = windows_ms();

  struct Trial {
    int d;
    std::size_t device;
    std::size_t rep;
  };
  std::vector<Trial> trials;
  for (int d : windows)
    for (std::size_t p = 0; p < devices.size(); ++p)
      for (std::size_t rep = 0; rep < kFig08Reps; ++rep) trials.push_back({d, p, rep});

  const auto sw = runner::run_campaign(
      "fig08", trials,
      [&](const Trial& t, const runner::TrialContext& ctx) {
        core::CaptureTrialConfig c;
        c.profile = devices[t.device];
        c.typist = panel[(t.device + t.rep * 7) % panel.size()];
        c.attacking_window = sim::ms(t.d);
        c.touches = 100;
        c.seed = ctx.seed;
        return core::TrialSession::local().run(c).rate * 100.0;
      },
      args);

  CampaignOutput out{metrics::Table({"D (ms)", families[0].c_str(), families[1].c_str(),
                                     families[2].c_str(), families[3].c_str()})};
  std::size_t i = 0;
  for (int d : windows) {
    std::map<std::string, metrics::RunningStats> by_family;
    for (std::size_t p = 0; p < devices.size(); ++p)
      for (std::size_t rep = 0; rep < kFig08Reps; ++rep, ++i)
        by_family[std::string(device::version_family(devices[p].version))].add(sw.results[i]);
    std::vector<std::string> row{metrics::fmt("%d", d)};
    for (const auto& fam : families) row.push_back(metrics::fmt("%.1f", by_family[fam].mean()));
    out.table.add_row(std::move(row));
  }
  out.trials = trials.size();
  out.errors = sw.errors.size();
  out.wall_ms = sw.stats.wall_ms;
  out.ok = sw.ok();
  return out;
}

}  // namespace

CampaignOutput run_scenario_campaign(const core::AttackScenario& scenario,
                                     const runner::BenchArgs& args) {
  const std::vector<std::string> configs = scenario.campaign_configs();
  const core::Tier tier = core::parse_tier(args.tier).value_or(core::Tier::kAuto);

  const auto sw = runner::run_campaign(
      scenario.campaign_label.c_str(), configs,
      [&](const std::string& encoded, const runner::TrialContext& ctx) {
        core::ScenarioOverrides overrides;
        overrides.seed = &ctx.seed;
        overrides.tier = &tier;
        return scenario.run_encoded(core::TrialSession::local(), encoded, overrides);
      },
      args);

  CampaignOutput out{core::scenario_table(scenario, configs, sw.results)};
  out.trials = configs.size();
  out.errors = sw.errors.size();
  out.wall_ms = sw.stats.wall_ms;
  out.ok = sw.ok();
  return out;
}

const std::vector<CampaignBench>& campaign_benches() {
  static const std::vector<CampaignBench> benches = [] {
    std::vector<CampaignBench> out = {
        {"fig07", "touch-event capture rate vs D (30-participant panel)", fig07_trials(),
         run_fig07},
        {"fig08", "capture rate vs D by Android version family", fig08_trials(), run_fig08},
    };
    // One generic bench per registered attack scenario, named by its
    // stable campaign label ("scenario:<name>").
    for (const core::AttackScenario* s : core::scenario_registry()) {
      out.push_back({s->campaign_label, s->description, s->campaign_configs().size(),
                     [s](const runner::BenchArgs& args) { return run_scenario_campaign(*s, args); }});
    }
    return out;
  }();
  return benches;
}

const CampaignBench* find_campaign_bench(std::string_view name) {
  for (const auto& b : campaign_benches()) {
    if (name == b.name) return &b;
  }
  return nullptr;
}

}  // namespace animus::service
