#include "sidechannel/shared_mem.hpp"

#include <cmath>

#include "metrics/table.hpp"

namespace animus::sidechannel {

TransitionSignature login_screen_signature() { return {820.0, 18.0}; }
TransitionSignature password_focus_signature() { return {185.0, 9.0}; }
TransitionSignature generic_navigation_signature() { return {430.0, 25.0}; }

SharedMemOracle::SharedMemOracle(server::World& world)
    : world_(&world), rng_(world.fork_rng("shared_mem_oracle")) {}

void SharedMemOracle::record_transition(int uid, std::string_view activity,
                                        const TransitionSignature& signature) {
  const double delta =
      rng_.truncated_normal(signature.mean_kb, signature.sd_kb,
                            std::max(1.0, signature.mean_kb - 4 * signature.sd_kb),
                            signature.mean_kb + 4 * signature.sd_kb);
  counters_kb_[uid] += delta;
  history_.push_back(Event{world_->now(), uid, std::string(activity), delta});
  world_->trace().record(world_->now(), sim::TraceCategory::kVictim,
                         metrics::fmt("shared-mem: uid=%d %s +%.0fkB", uid,
                                      std::string(activity).c_str(), delta));
}

double SharedMemOracle::counter_kb(int uid) const {
  const auto it = counters_kb_.find(uid);
  return it == counters_kb_.end() ? 0.0 : it->second;
}

UiStateInferrer::UiStateInferrer(server::World& world, const SharedMemOracle& oracle,
                                 int victim_uid, Config config)
    : world_(&world), oracle_(&oracle), victim_uid_(victim_uid), config_(config) {}

UiStateInferrer::UiStateInferrer(server::World& world, const SharedMemOracle& oracle,
                                 int victim_uid)
    : UiStateInferrer(world, oracle, victim_uid, Config{}) {}

void UiStateInferrer::learn(std::string activity, TransitionSignature signature) {
  trained_[std::move(activity)] = signature;
}

void UiStateInferrer::start(Detection on_detect) {
  if (running_) return;
  running_ = true;
  on_detect_ = std::move(on_detect);
  last_counter_kb_ = oracle_->counter_kb(victim_uid_);
  timer_ = world_->loop().schedule_after(config_.poll_period, [this] { poll(); });
}

void UiStateInferrer::stop() {
  if (!running_) return;
  running_ = false;
  world_->loop().cancel(timer_);
}

void UiStateInferrer::poll() {
  if (!running_) return;
  ++polls_;
  const double now_kb = oracle_->counter_kb(victim_uid_);
  const double delta = now_kb - last_counter_kb_;
  last_counter_kb_ = now_kb;
  if (delta > 0.0) {
    // Classify the jump against the trained signatures: nearest mean
    // within tolerance wins.
    const std::string* best = nullptr;
    double best_dist = config_.tolerance_kb;
    for (const auto& [activity, sig] : trained_) {
      const double dist = std::abs(delta - sig.mean_kb);
      if (dist <= best_dist) {
        best_dist = dist;
        best = &activity;
      }
    }
    if (best != nullptr) {
      ++detections_;
      world_->trace().record(world_->now(), sim::TraceCategory::kAttack,
                             metrics::fmt("ui-state inference: %s (+%.0fkB)", best->c_str(),
                                          delta));
      if (on_detect_) on_detect_(*best, world_->now());
    }
  }
  timer_ = world_->loop().schedule_after(config_.poll_period, [this] { poll(); });
}

}  // namespace animus::sidechannel
