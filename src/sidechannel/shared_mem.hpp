// Shared-memory UI-state side channel (Chen et al., USENIX Security'14),
// which Section V cites as the alternative to the accessibility service
// for detecting "when the user enters the password": an unprivileged app
// can read another process's shared-memory counters (e.g. via
// /proc/<pid>/statm) and infer foreground-activity transitions from
// their characteristic jumps.
//
// The oracle models the victim side (each activity transition bumps the
// process's counter by a signature-specific amount); the inferrer models
// the attacker side (poll the public counter, match deltas against
// offline-trained signatures).
#pragma once

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "server/world.hpp"

namespace animus::sidechannel {

/// Dirty-page delta signature of one activity transition (kilobytes).
struct TransitionSignature {
  double mean_kb = 0.0;
  double sd_kb = 0.0;
};

class SharedMemOracle {
 public:
  explicit SharedMemOracle(server::World& world);

  /// Victim side: an activity transition happened; the process's
  /// counter jumps by a sample from the signature.
  void record_transition(int uid, std::string_view activity,
                         const TransitionSignature& signature);

  /// Attacker side — public and unprivileged: the current counter.
  [[nodiscard]] double counter_kb(int uid) const;

  struct Event {
    sim::SimTime at{0};
    int uid = -1;
    std::string activity;
    double delta_kb = 0.0;
  };
  [[nodiscard]] const std::vector<Event>& history() const { return history_; }

 private:
  server::World* world_;
  sim::Rng rng_;
  std::map<int, double> counters_kb_;
  std::vector<Event> history_;
};

/// The attacker's activity-inference engine: polls a victim's counter
/// and classifies each observed jump against trained signatures.
class UiStateInferrer {
 public:
  struct Config {
    sim::SimTime poll_period = sim::ms(30);
    /// A delta matches a signature when within this distance of its mean.
    double tolerance_kb = 40.0;
  };

  /// Callback: (activity label, time of detection).
  using Detection = std::function<void(const std::string&, sim::SimTime)>;

  UiStateInferrer(server::World& world, const SharedMemOracle& oracle, int victim_uid,
                  Config config);
  UiStateInferrer(server::World& world, const SharedMemOracle& oracle, int victim_uid);

  /// Offline training: learned signature per activity label.
  void learn(std::string activity, TransitionSignature signature);

  void start(Detection on_detect);
  void stop();

  [[nodiscard]] bool running() const { return running_; }
  [[nodiscard]] int polls() const { return polls_; }
  [[nodiscard]] int detections() const { return detections_; }

 private:
  void poll();

  server::World* world_;
  const SharedMemOracle* oracle_;
  int victim_uid_;
  Config config_;
  std::map<std::string, TransitionSignature> trained_;
  Detection on_detect_;
  bool running_ = false;
  double last_counter_kb_ = 0.0;
  int polls_ = 0;
  int detections_ = 0;
  sim::EventLoop::EventId timer_{};
};

/// Canonical signatures used by the victim models and the attacker's
/// training set (values are modelling choices; what matters is that the
/// transitions are separable, as Chen et al. demonstrated on real apps).
TransitionSignature login_screen_signature();
TransitionSignature password_focus_signature();
TransitionSignature generic_navigation_signature();

}  // namespace animus::sidechannel
