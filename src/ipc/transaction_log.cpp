#include "ipc/transaction_log.hpp"

#include "metrics/table.hpp"

namespace animus::ipc {

std::string_view to_string(MethodCode m) {
  switch (m) {
    case MethodCode::kAddView: return "addView";
    case MethodCode::kRemoveView: return "removeView";
    case MethodCode::kEnqueueToast: return "enqueueToast";
    case MethodCode::kOther: return "other";
  }
  return "?";
}

std::uint64_t TransactionLog::record(int caller_uid, MethodCode code,
                                     std::string_view interface, sim::SimTime sent,
                                     sim::SimTime delivered) {
  if (!enabled_) return 0;
  Transaction t;
  t.id = next_id_++;
  t.caller_uid = caller_uid;
  t.code = code;
  t.interface = std::string(interface);
  t.sent = sent;
  t.delivered = delivered;
  log_.push_back(t);
  // Static per-method names: the sweep profiler keys on the pointer and
  // must not pay for message formatting on the (trace-disabled) hot path.
  const char* span_name = "binder.other";
  switch (code) {
    case MethodCode::kAddView: span_name = "binder.addView"; break;
    case MethodCode::kRemoveView: span_name = "binder.removeView"; break;
    case MethodCode::kEnqueueToast: span_name = "binder.enqueueToast"; break;
    case MethodCode::kOther: break;
  }
  sim::profile_span(span_name, sim::TraceCategory::kIpc, sent, delivered);
  if (trace_ != nullptr && trace_->enabled()) {
    trace_->span(sent, delivered, sim::TraceCategory::kIpc,
                 metrics::fmt("binder %s uid=%d", std::string(to_string(code)).c_str(),
                              caller_uid));
  }
  for (const auto& obs : observers_) obs(log_.back());
  return t.id;
}

std::size_t TransactionLog::count(MethodCode code) const {
  std::size_t n = 0;
  for (const auto& t : log_) n += t.code == code;
  return n;
}

std::vector<Transaction> TransactionLog::for_uid(int uid) const {
  std::vector<Transaction> out;
  for (const auto& t : log_) {
    if (t.caller_uid == uid) out.push_back(t);
  }
  return out;
}

}  // namespace animus::ipc
