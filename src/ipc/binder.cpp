#include "ipc/binder.hpp"

namespace animus::ipc {

sim::SimTime BinderChannel::call(int caller_uid, MethodCode code, std::string_view interface,
                                 const LatencyModel& transit, sim::SimTime server_cost,
                                 Handler handler) {
  const sim::SimTime latency = deterministic_ ? transit.mean() : transit.sample(rng_);
  const sim::SimTime sent = server_->loop().now();
  if (log_ != nullptr) log_->record(caller_uid, code, interface, sent, sent + latency);
  server_->post(latency, server_cost, std::move(handler));
  return latency;
}

}  // namespace animus::ipc
