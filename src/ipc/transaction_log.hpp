// Binder transaction ledger.
//
// Section VII-A: "Such a call incurs an information-rich Binder
// transaction, which can be used to determine which method is called as
// well as the caller". The IPC-based defense instruments Binder in a
// minor fashion and analyzes transactions of interest; this ledger is
// that instrumentation point in the simulation. It is also what the
// overhead microbenchmark measures.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "sim/time.hpp"
#include "sim/trace.hpp"

namespace animus::ipc {

/// Binder method codes for the calls the defense cares about.
enum class MethodCode : std::uint16_t {
  kAddView = 1,       // WindowManager.addView
  kRemoveView = 2,    // WindowManager.removeView
  kEnqueueToast = 3,  // NotificationManager.enqueueToast
  kOther = 99,
};

std::string_view to_string(MethodCode m);

struct Transaction {
  std::uint64_t id = 0;
  int caller_uid = -1;
  MethodCode code = MethodCode::kOther;
  std::string interface;   // e.g. "android.view.IWindowManager"
  sim::SimTime sent{0};      // when the caller issued the call
  sim::SimTime delivered{0}; // when the server received it
};

class TransactionLog {
 public:
  /// Observer invoked synchronously on each record (online defense mode).
  using Observer = std::function<void(const Transaction&)>;

  std::uint64_t record(int caller_uid, MethodCode code, std::string_view interface,
                       sim::SimTime sent, sim::SimTime delivered);

  void set_enabled(bool on) { enabled_ = on; }
  [[nodiscard]] bool enabled() const { return enabled_; }

  /// When set, every recorded transaction also emits a duration span on
  /// the trace's "ipc" track covering the Binder transit (sent ->
  /// delivered), so Perfetto shows the in-flight call per transaction.
  void set_trace(sim::TraceRecorder* trace) { trace_ = trace; }

  void add_observer(Observer obs) { observers_.push_back(std::move(obs)); }

  /// Transactions recorded with a given method code.
  [[nodiscard]] std::size_t count(MethodCode code) const;

  [[nodiscard]] std::span<const Transaction> all() const { return log_; }
  [[nodiscard]] std::vector<Transaction> for_uid(int uid) const;
  [[nodiscard]] std::size_t size() const { return log_.size(); }
  void clear() { log_.clear(); }

  /// Restore the freshly-constructed state (ledger emptied, ids rewound,
  /// observers dropped, tracing detached); entry storage capacity is
  /// retained for the next trial of a session.
  void reset() {
    enabled_ = true;
    trace_ = nullptr;
    next_id_ = 1;
    log_.clear();
    observers_.clear();
  }

 private:
  bool enabled_ = true;
  sim::TraceRecorder* trace_ = nullptr;
  std::uint64_t next_id_ = 1;
  std::vector<Transaction> log_;
  std::vector<Observer> observers_;
};

}  // namespace animus::ipc
