// One-way Binder call model.
//
// A BinderChannel delivers calls from a client thread to a server actor
// with a sampled transit latency and an on-server execution cost, and
// records each call in the TransactionLog. Distinct per-method latency
// models let the simulation reproduce the paper's key timing asymmetry:
// the add-view event overtakes the remove-view event in transit
// (Tam < Trm, Section III-C), and Android 10's reduced Trm enlarging the
// mistouch gap Tmis = Tas + Tam - Trm (Section VI-B, Fig. 8).
#pragma once

#include <functional>
#include <string>
#include <utility>

#include "ipc/transaction_log.hpp"
#include "sim/actor.hpp"
#include "sim/rng.hpp"

namespace animus::ipc {

/// Gaussian latency with a hard floor, sampled per call.
struct LatencyModel {
  double mean_ms = 1.0;
  double sd_ms = 0.0;
  double floor_ms = 0.05;

  [[nodiscard]] sim::SimTime sample(sim::Rng& rng) const {
    return rng.normal_ms(mean_ms, sd_ms, floor_ms);
  }
  /// Deterministic central value (used when jitter is disabled).
  [[nodiscard]] sim::SimTime mean() const { return sim::ms_f(mean_ms); }
};

class BinderChannel {
 public:
  using Handler = std::function<void()>;

  BinderChannel(sim::Actor& server, sim::Rng rng, TransactionLog* log)
      : server_(&server), rng_(rng), log_(log) {}

  /// When true, every call uses the latency model's mean instead of a
  /// sample; experiments that binary-search timing boundaries (Table II)
  /// run in this mode.
  void set_deterministic(bool on) { deterministic_ = on; }
  [[nodiscard]] bool deterministic() const { return deterministic_; }

  /// Issue a one-way call: it reaches the server after a latency drawn
  /// from `transit`, then occupies the server actor for `server_cost`
  /// before `handler` runs. Returns the sampled transit latency so
  /// callers/tests can reason about arrival order.
  sim::SimTime call(int caller_uid, MethodCode code, std::string_view interface,
                    const LatencyModel& transit, sim::SimTime server_cost, Handler handler);

  [[nodiscard]] TransactionLog* log() { return log_; }
  [[nodiscard]] sim::Actor& server() { return *server_; }

 private:
  sim::Actor* server_;
  sim::Rng rng_;
  TransactionLog* log_;
  bool deterministic_ = false;
};

}  // namespace animus::ipc
