// Scenario scripting: a small line-oriented DSL that drives a World, so
// experiments can be written, shared and replayed as text instead of
// C++. Used by the scenario_runner example and by tests; every command
// maps 1:1 onto public API calls.
//
//   # comment
//   device mi8 9
//   seed 42
//   grant-overlay 10666
//   window activity uid=10100 bounds=0,0,1080,2280
//   attack overlay d=190 bounds=0,0,1080,2280 at=0
//   attack tapjack d=150 bounds=0,0,1080,2280 at=0
//   attack notification-flood count=60 interval=4 at=100
//   attack frosted alpha=0.35 dwell=1500 at=200
//   tap 540 1200 at=1500
//   run 5000
//   expect alert L1
//   expect captures >= 1
//   expect overlays 10666 >= 1
//   stop-attacks
//   run 2000
//   expect overlays 10666 == 0
//
// Times are milliseconds. `at=` schedules relative to the current
// simulation time when the command executes; commands without `at=` act
// immediately. `run` advances virtual time. `expect` failures abort the
// scenario with a line:column-addressed message; unknown commands
// suggest the nearest registered verb.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/overlay_attack.hpp"
#include "core/toast_attack.hpp"
#include "defense/enforcement.hpp"
#include "server/world.hpp"

namespace animus::script {

struct ScenarioError {
  std::size_t line = 0;
  std::size_t column = 0;  ///< 1-based column of the offending token (0 = whole line)
  std::string message;
};

struct ScenarioResult {
  bool ok = false;
  std::optional<ScenarioError> error;
  int expects_checked = 0;
  std::string log;  // one line per executed command
};

/// Parsed-but-not-yet-run scenario. Parsing validates syntax only;
/// execution validates semantics (unknown device, bad uid...).
class Scenario {
 public:
  /// Parse a script; returns nullopt + error on syntax problems.
  static std::optional<Scenario> parse(std::string_view text, ScenarioError* error);

  /// Execute on a fresh world. Deterministic per script (plus `seed`).
  [[nodiscard]] ScenarioResult run() const;

  [[nodiscard]] std::size_t command_count() const { return commands_.size(); }

 private:
  struct Command {
    std::size_t line = 0;
    std::size_t column = 0;  ///< 1-based column of the verb token
    std::string verb;
    std::vector<std::string> args;
  };
  std::vector<Command> commands_;
};

/// Convenience: parse + run, folding syntax errors into the result.
ScenarioResult run_scenario(std::string_view text);

}  // namespace animus::script
