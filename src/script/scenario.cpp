#include "script/scenario.hpp"

#include <charconv>
#include <map>

#include "device/registry.hpp"
#include "metrics/table.hpp"
#include "percept/outcomes.hpp"
#include "sim/chrome_trace.hpp"

namespace animus::script {
namespace {

/// A lexed token plus its 1-based column, so every parse and execution
/// error can point at the exact offending spot of the line.
struct Token {
  std::string text;
  std::size_t column = 0;
};

std::vector<Token> tokenize(std::string_view line) {
  std::vector<Token> tokens;
  std::size_t i = 0;
  while (i < line.size()) {
    while (i < line.size() && std::isspace(static_cast<unsigned char>(line[i]))) ++i;
    if (i >= line.size() || line[i] == '#') break;
    if (line[i] == '"') {
      const auto end = line.find('"', i + 1);
      if (end == std::string_view::npos) {
        tokens.push_back({std::string(line.substr(i)), i + 1});  // unterminated; caller rejects
        return tokens;
      }
      tokens.push_back({std::string(line.substr(i + 1, end - i - 1)), i + 1});
      i = end + 1;
      continue;
    }
    std::size_t start = i;
    while (i < line.size() && !std::isspace(static_cast<unsigned char>(line[i]))) ++i;
    tokens.push_back({std::string(line.substr(start, i - start)), start + 1});
  }
  return tokens;
}

/// Levenshtein distance, for did-you-mean suggestions on unknown verbs.
std::size_t edit_distance(std::string_view a, std::string_view b) {
  std::vector<std::size_t> row(b.size() + 1);
  for (std::size_t j = 0; j <= b.size(); ++j) row[j] = j;
  for (std::size_t i = 1; i <= a.size(); ++i) {
    std::size_t diag = row[0];
    row[0] = i;
    for (std::size_t j = 1; j <= b.size(); ++j) {
      const std::size_t next = std::min({row[j] + 1, row[j - 1] + 1,
                                         diag + (a[i - 1] == b[j - 1] ? 0 : 1)});
      diag = row[j];
      row[j] = next;
    }
  }
  return row[b.size()];
}

/// "key=value" accessor over a command's arguments.
std::optional<std::string_view> keyed(const std::vector<std::string>& args,
                                      std::string_view key) {
  for (const auto& a : args) {
    if (a.size() > key.size() + 1 && a.compare(0, key.size(), key) == 0 &&
        a[key.size()] == '=') {
      return std::string_view(a).substr(key.size() + 1);
    }
  }
  return std::nullopt;
}

std::optional<long> to_long(std::string_view s) {
  long v = 0;
  const auto [p, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
  if (ec != std::errc{} || p != s.data() + s.size()) return std::nullopt;
  return v;
}

std::optional<double> to_double(std::string_view s) {
  double v = 0.0;
  const auto [p, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
  if (ec != std::errc{} || p != s.data() + s.size()) return std::nullopt;
  return v;
}

std::optional<ui::Rect> to_rect(std::string_view s) {
  ui::Rect r;
  int* fields[4] = {&r.x, &r.y, &r.w, &r.h};
  std::size_t pos = 0;
  for (int f = 0; f < 4; ++f) {
    const auto comma = s.find(',', pos);
    const auto part = s.substr(pos, comma == std::string_view::npos ? s.size() - pos
                                                                    : comma - pos);
    const auto v = to_long(part);
    if (!v) return std::nullopt;
    *fields[f] = static_cast<int>(*v);
    if (f < 3) {
      if (comma == std::string_view::npos) return std::nullopt;
      pos = comma + 1;
    } else if (comma != std::string_view::npos) {
      return std::nullopt;
    }
  }
  return r;
}

const std::map<std::string, int, std::less<>>& verb_arity() {
  // verb -> minimum positional arguments (excluding key=value ones).
  static const std::map<std::string, int, std::less<>> kArity = {
      {"device", 1},      {"seed", 1},           {"deterministic", 1},
      {"grant-overlay", 1}, {"defense", 1},      {"attack", 1},
      {"window", 1},      {"tap", 2},            {"run", 1},
      {"stop-attacks", 0}, {"expect", 2},
      {"export-trace", 1},
  };
  return kArity;
}

/// The closest registered verb within edit distance 3, "" when nothing
/// is close enough to be a plausible typo.
std::string nearest_verb(std::string_view verb) {
  std::string best;
  std::size_t best_distance = 4;
  for (const auto& [candidate, arity] : verb_arity()) {
    (void)arity;
    const std::size_t d = edit_distance(verb, candidate);
    if (d < best_distance) {
      best_distance = d;
      best = candidate;
    }
  }
  return best;
}

struct Runtime {
  explicit Runtime(server::WorldConfig config) : world(std::move(config)) {}
  server::World world;
  std::vector<std::unique_ptr<core::OverlayAttack>> overlay_attacks;
  std::vector<std::unique_ptr<core::ToastAttack>> toast_attacks;
  std::unique_ptr<defense::DefenseDaemon> daemon;
  int captures = 0;
  std::map<int, int> window_taps;  ///< uid -> taps delivered to its script windows
  /// Content prefix -> glass opacity multiplier of an `attack frosted`
  /// layer; `expect alpha` folds it into the window's animated alpha the
  /// same way the frosted-glass pack's trajectory probe does.
  std::map<std::string, double, std::less<>> glass_alpha;
};

}  // namespace

std::optional<Scenario> Scenario::parse(std::string_view text, ScenarioError* error) {
  Scenario scenario;
  std::size_t line_no = 0;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const auto nl = text.find('\n', pos);
    const auto line = text.substr(pos, nl == std::string_view::npos ? text.size() - pos
                                                                    : nl - pos);
    ++line_no;
    pos = nl == std::string_view::npos ? text.size() + 1 : nl + 1;

    auto tokens = tokenize(line);
    if (tokens.empty()) continue;
    if (!tokens.back().text.empty() && tokens.back().text.front() == '"') {
      if (error != nullptr) *error = {line_no, tokens.back().column, "unterminated quote"};
      return std::nullopt;
    }
    Command cmd;
    cmd.line = line_no;
    cmd.column = tokens.front().column;
    cmd.verb = tokens.front().text;
    cmd.args.reserve(tokens.size() - 1);
    for (std::size_t t = 1; t < tokens.size(); ++t) cmd.args.push_back(tokens[t].text);

    const auto arity = verb_arity().find(cmd.verb);
    if (arity == verb_arity().end()) {
      if (error != nullptr) {
        std::string msg = "unknown command '" + cmd.verb + "'";
        if (const std::string suggestion = nearest_verb(cmd.verb); !suggestion.empty()) {
          msg += " (did you mean '" + suggestion + "'?)";
        }
        *error = {line_no, cmd.column, std::move(msg)};
      }
      return std::nullopt;
    }
    int positional = 0;
    for (const auto& a : cmd.args) {
      positional += a.find('=') == std::string::npos;
    }
    if (positional < arity->second) {
      if (error != nullptr) {
        *error = {line_no, cmd.column, "'" + cmd.verb + "' needs at least " +
                                           std::to_string(arity->second) + " arguments"};
      }
      return std::nullopt;
    }
    scenario.commands_.push_back(std::move(cmd));
  }
  return scenario;
}

ScenarioResult Scenario::run() const {
  ScenarioResult result;
  // Pre-scan configuration commands that must precede world creation.
  server::WorldConfig config;
  config.profile = device::reference_device_android9();
  config.trace_enabled = false;
  for (const auto& cmd : commands_) {
    if (cmd.verb == "device") {
      std::optional<device::DeviceProfile> dev;
      if (cmd.args.size() >= 2) {
        for (const auto& d : device::all_devices()) {
          if (d.model == cmd.args[0] &&
              device::to_string(d.version) == cmd.args[1]) {
            dev = d;
          }
        }
      } else {
        dev = device::find_device(cmd.args[0]);
      }
      if (!dev) {
        result.error = {cmd.line, cmd.column, "unknown device '" + cmd.args[0] + "'"};
        return result;
      }
      config.profile = *dev;
    } else if (cmd.verb == "seed") {
      const auto v = to_long(cmd.args[0]);
      if (!v) {
        result.error = {cmd.line, cmd.column, "bad seed"};
        return result;
      }
      config.seed = static_cast<std::uint64_t>(*v);
    } else if (cmd.verb == "deterministic") {
      config.deterministic = cmd.args[0] == "on";
    } else if (cmd.verb == "export-trace") {
      config.trace_enabled = true;
    }
  }

  Runtime rt{config};
  auto fail = [&result](const Command& cmd, std::string msg) {
    result.error = {cmd.line, cmd.column, std::move(msg)};
    return result;
  };
  auto log = [&result, &rt](const Command& cmd) {
    result.log += metrics::fmt("%8.1fms  %s", sim::to_ms(rt.world.now()), cmd.verb.c_str());
    for (const auto& a : cmd.args) result.log += " " + a;
    result.log += '\n';
  };

  std::string trace_path;
  for (const auto& cmd : commands_) {
    log(cmd);
    if (cmd.verb == "device" || cmd.verb == "seed" || cmd.verb == "deterministic") {
      continue;  // consumed during pre-scan
    }
    if (cmd.verb == "export-trace") {
      trace_path = cmd.args[0];
      continue;
    }
    if (cmd.verb == "grant-overlay") {
      const auto uid = to_long(cmd.args[0]);
      if (!uid) return fail(cmd, "bad uid");
      rt.world.server().grant_overlay_permission(static_cast<int>(*uid));
    } else if (cmd.verb == "defense") {
      if (cmd.args[0] == "notification") {
        const auto t = cmd.args.size() > 1 ? to_long(cmd.args[1]) : std::optional<long>(690);
        if (!t) return fail(cmd, "bad delay");
        rt.world.server().set_alert_removal_delay(sim::ms(*t));
      } else if (cmd.args[0] == "toast-gap") {
        const auto t = cmd.args.size() > 1 ? to_long(cmd.args[1]) : std::optional<long>(500);
        if (!t) return fail(cmd, "bad gap");
        rt.world.nms().set_inter_toast_gap(sim::ms(*t));
      } else if (cmd.args[0] == "daemon") {
        rt.daemon = std::make_unique<defense::DefenseDaemon>(rt.world);
        rt.daemon->install();
      } else {
        return fail(cmd, "unknown defense '" + cmd.args[0] + "'");
      }
    } else if (cmd.verb == "window") {
      if (cmd.args[0] != "activity") return fail(cmd, "only 'window activity' supported");
      const auto uid = keyed(cmd.args, "uid");
      const auto bounds = keyed(cmd.args, "bounds");
      if (!uid || !to_long(*uid)) return fail(cmd, "window needs uid=");
      const auto rect = bounds ? to_rect(*bounds) : std::optional<ui::Rect>(ui::Rect{0, 0, 1080, 2280});
      if (!rect) return fail(cmd, "bad bounds");
      ui::Window w;
      w.owner_uid = static_cast<int>(*to_long(*uid));
      w.type = ui::WindowType::kActivity;
      w.bounds = *rect;
      w.content = "script:activity";
      const int owner = w.owner_uid;
      w.on_touch = [&rt, owner](sim::SimTime, ui::Point) { ++rt.window_taps[owner]; };
      rt.world.wms().add_window_now(std::move(w));
    } else if (cmd.verb == "attack") {
      const auto at = keyed(cmd.args, "at");
      const auto delay = at ? to_long(*at) : std::optional<long>(0);
      if (!delay) return fail(cmd, "bad at=");
      if (cmd.args[0] == "overlay") {
        core::OverlayAttackConfig oc;
        if (const auto d = keyed(cmd.args, "d")) {
          const auto v = to_long(*d);
          if (!v) return fail(cmd, "bad d=");
          oc.attacking_window = sim::ms(*v);
        }
        if (const auto b = keyed(cmd.args, "bounds")) {
          const auto r = to_rect(*b);
          if (!r) return fail(cmd, "bad bounds=");
          oc.bounds = *r;
        }
        if (const auto u = keyed(cmd.args, "uid")) {
          const auto v = to_long(*u);
          if (!v) return fail(cmd, "bad uid=");
          oc.uid = static_cast<int>(*v);
        }
        oc.on_capture = [&rt](sim::SimTime, ui::Point) { ++rt.captures; };
        rt.overlay_attacks.push_back(std::make_unique<core::OverlayAttack>(rt.world, oc));
        auto* attack = rt.overlay_attacks.back().get();
        rt.world.loop().schedule_after(sim::ms(*delay), [attack] { attack->start(); });
      } else if (cmd.args[0] == "toast") {
        core::ToastAttackConfig tc;
        if (const auto d = keyed(cmd.args, "duration")) {
          const auto v = to_long(*d);
          if (!v) return fail(cmd, "bad duration=");
          tc.toast_duration = sim::ms(*v);
        }
        if (const auto c = keyed(cmd.args, "content")) tc.content = std::string(*c);
        if (const auto b = keyed(cmd.args, "bounds")) {
          const auto r = to_rect(*b);
          if (!r) return fail(cmd, "bad bounds=");
          tc.bounds = *r;
        }
        rt.toast_attacks.push_back(std::make_unique<core::ToastAttack>(rt.world, tc));
        auto* attack = rt.toast_attacks.back().get();
        rt.world.loop().schedule_after(sim::ms(*delay), [attack] { attack->start(); });
      } else if (cmd.args[0] == "tapjack") {
        // Pass-through decoy (FLAG_NOT_TOUCHABLE): draw-and-destroy
        // cycling covers the victim window while taps land beneath it —
        // the tapjacking pack's overlay shape.
        core::OverlayAttackConfig oc;
        oc.transparent = false;
        oc.intercept_touches = false;
        oc.content = "attack:decoy";
        if (const auto d = keyed(cmd.args, "d")) {
          const auto v = to_long(*d);
          if (!v) return fail(cmd, "bad d=");
          oc.attacking_window = sim::ms(*v);
        }
        if (const auto b = keyed(cmd.args, "bounds")) {
          const auto r = to_rect(*b);
          if (!r) return fail(cmd, "bad bounds=");
          oc.bounds = *r;
        }
        rt.overlay_attacks.push_back(std::make_unique<core::OverlayAttack>(rt.world, oc));
        auto* attack = rt.overlay_attacks.back().get();
        rt.world.loop().schedule_after(sim::ms(*delay), [attack] { attack->start(); });
      } else if (cmd.args[0] == "notification-flood") {
        // Knock-Knock flood: count= toasts enqueued every interval= ms,
        // starving the victim's heads-up slot (notification-abuse pack).
        long count = 60, interval = 4, duration = 2000;
        if (const auto c = keyed(cmd.args, "count")) {
          const auto v = to_long(*c);
          if (!v) return fail(cmd, "bad count=");
          count = *v;
        }
        if (const auto iv = keyed(cmd.args, "interval")) {
          const auto v = to_long(*iv);
          if (!v) return fail(cmd, "bad interval=");
          interval = *v;
        }
        if (const auto du = keyed(cmd.args, "duration")) {
          const auto v = to_long(*du);
          if (!v) return fail(cmd, "bad duration=");
          duration = *v;
        }
        for (long i = 0; i < count; ++i) {
          rt.world.loop().schedule_after(sim::ms(*delay + i * interval), [&rt, duration] {
            server::ToastRequest flood;
            flood.uid = server::kMalwareUid;
            flood.content = "attack:flood";
            flood.duration = sim::ms(duration);
            rt.world.server().enqueue_toast(server::kMalwareUid, std::move(flood));
          });
        }
      } else if (cmd.args[0] == "frosted") {
        // Translucent glass layer on the toast plane for dwell= ms; its
        // opacity multiplier feeds `expect alpha` (frosted-glass pack).
        double alpha = 0.35;
        long dwell = 1500;
        ui::Rect bounds{0, 0, 1080, 2280};
        if (const auto a = keyed(cmd.args, "alpha")) {
          const auto v = to_double(*a);
          if (!v) return fail(cmd, "bad alpha=");
          alpha = *v;
        }
        if (const auto dw = keyed(cmd.args, "dwell")) {
          const auto v = to_long(*dw);
          if (!v) return fail(cmd, "bad dwell=");
          dwell = *v;
        }
        if (const auto b = keyed(cmd.args, "bounds")) {
          const auto r = to_rect(*b);
          if (!r) return fail(cmd, "bad bounds=");
          bounds = *r;
        }
        rt.glass_alpha["attack:frosted"] = alpha;
        auto glass = std::make_shared<ui::WindowId>(ui::kInvalidWindow);
        rt.world.loop().schedule_after(sim::ms(*delay), [&rt, glass, bounds] {
          ui::Window w;
          w.owner_uid = server::kMalwareUid;
          w.bounds = bounds;
          w.content = "attack:frosted";
          *glass = rt.world.wms().add_toast_now(std::move(w));
        });
        rt.world.loop().schedule_after(sim::ms(*delay + dwell), [&rt, glass] {
          rt.world.wms().fade_out_and_remove(*glass);
        });
      } else {
        return fail(cmd, "unknown attack '" + cmd.args[0] + "'");
      }
    } else if (cmd.verb == "tap") {
      const auto x = to_long(cmd.args[0]);
      const auto y = to_long(cmd.args[1]);
      if (!x || !y) return fail(cmd, "bad coordinates");
      const auto at = keyed(cmd.args, "at");
      const auto delay = at ? to_long(*at) : std::optional<long>(0);
      if (!delay) return fail(cmd, "bad at=");
      const ui::Point p{static_cast<int>(*x), static_cast<int>(*y)};
      rt.world.loop().schedule_after(sim::ms(*delay),
                                     [&rt, p] { rt.world.input().inject_tap(p); });
    } else if (cmd.verb == "run") {
      const auto v = to_long(cmd.args[0]);
      if (!v) return fail(cmd, "bad duration");
      rt.world.run_until(rt.world.now() + sim::ms(*v));
    } else if (cmd.verb == "stop-attacks") {
      for (auto& a : rt.overlay_attacks) a->stop();
      for (auto& a : rt.toast_attacks) a->stop();
    } else if (cmd.verb == "expect") {
      ++result.expects_checked;
      const std::string& what = cmd.args[0];
      if (what == "alert") {
        const auto snapshot = rt.world.system_ui().snapshot(server::kMalwareUid);
        const auto got = percept::classify(snapshot);
        const std::string want = cmd.args[1];
        const std::string got_s = "L" + std::to_string(static_cast<int>(got));
        if (got_s != want) {
          return fail(cmd, "expected alert " + want + ", got " + got_s);
        }
      } else if (what == "captures") {
        // expect captures >= N | == N
        if (cmd.args.size() < 3) return fail(cmd, "expect captures <op> <n>");
        const auto n = to_long(cmd.args[2]);
        if (!n) return fail(cmd, "bad count");
        const bool ok = cmd.args[1] == ">=" ? rt.captures >= *n
                        : cmd.args[1] == "==" ? rt.captures == *n
                                              : false;
        if (!ok) {
          return fail(cmd, metrics::fmt("expected captures %s %ld, got %d",
                                             cmd.args[1].c_str(), *n, rt.captures));
        }
      } else if (what == "overlays") {
        if (cmd.args.size() < 4) return fail(cmd, "expect overlays <uid> <op> <n>");
        const auto uid = to_long(cmd.args[1]);
        const auto n = to_long(cmd.args[3]);
        if (!uid || !n) return fail(cmd, "bad arguments");
        const int got = rt.world.wms().overlay_count(static_cast<int>(*uid));
        const bool ok = cmd.args[2] == ">=" ? got >= *n
                        : cmd.args[2] == "==" ? got == *n
                                              : false;
        if (!ok) {
          return fail(cmd, metrics::fmt("expected overlays(%ld) %s %ld, got %d", *uid,
                                             cmd.args[2].c_str(), *n, got));
        }
      } else if (what == "taps") {
        // expect taps <uid> <op> <n> — taps delivered to script windows
        if (cmd.args.size() < 4) return fail(cmd, "expect taps <uid> <op> <n>");
        const auto uid = to_long(cmd.args[1]);
        const auto n = to_long(cmd.args[3]);
        if (!uid || !n) return fail(cmd, "bad arguments");
        const auto it = rt.window_taps.find(static_cast<int>(*uid));
        const int got = it == rt.window_taps.end() ? 0 : it->second;
        const bool ok = cmd.args[2] == ">=" ? got >= *n
                        : cmd.args[2] == "==" ? got == *n
                                              : false;
        if (!ok) {
          return fail(cmd, metrics::fmt("expected taps(%ld) %s %ld, got %d", *uid,
                                        cmd.args[2].c_str(), *n, got));
        }
      } else if (what == "queued") {
        // expect queued <uid> <op> <n> — tokens in the NMS toast queue
        if (cmd.args.size() < 4) return fail(cmd, "expect queued <uid> <op> <n>");
        const auto uid = to_long(cmd.args[1]);
        const auto n = to_long(cmd.args[3]);
        if (!uid || !n) return fail(cmd, "bad arguments");
        const int got = rt.world.nms().queued_tokens(static_cast<int>(*uid));
        const bool ok = cmd.args[2] == ">=" ? got >= *n
                        : cmd.args[2] == "==" ? got == *n
                                              : false;
        if (!ok) {
          return fail(cmd, metrics::fmt("expected queued(%ld) %s %ld, got %d", *uid,
                                        cmd.args[2].c_str(), *n, got));
        }
      } else if (what == "toasts-shown") {
        // expect toasts-shown <op> <n> — NMS lifetime shown counter
        if (cmd.args.size() < 3) return fail(cmd, "expect toasts-shown <op> <n>");
        const auto n = to_long(cmd.args[2]);
        if (!n) return fail(cmd, "bad count");
        const long got = static_cast<long>(rt.world.nms().stats().shown);
        const bool ok = cmd.args[1] == ">=" ? got >= *n
                        : cmd.args[1] == "==" ? got == *n
                                              : false;
        if (!ok) {
          return fail(cmd, metrics::fmt("expected toasts-shown %s %ld, got %ld",
                                        cmd.args[1].c_str(), *n, got));
        }
      } else if (what == "alpha") {
        // expect alpha <prefix> <op> <value> — perceived opacity of the
        // malware-owned layer whose content starts with <prefix>, at the
        // current simulation time (glass multiplier applied).
        if (cmd.args.size() < 4) return fail(cmd, "expect alpha <prefix> <op> <value>");
        const auto want = to_double(cmd.args[3]);
        if (!want) return fail(cmd, "bad alpha value");
        double got = rt.world.wms().max_alpha_at(server::kMalwareUid, cmd.args[1],
                                                 rt.world.now());
        if (const auto it = rt.glass_alpha.find(cmd.args[1]); it != rt.glass_alpha.end()) {
          got *= it->second;
        }
        const bool ok = cmd.args[2] == ">=" ? got >= *want
                        : cmd.args[2] == "<=" ? got <= *want
                        : cmd.args[2] == "==" ? got == *want
                                              : false;
        if (!ok) {
          return fail(cmd, metrics::fmt("expected alpha(%s) %s %.3f, got %.3f",
                                        cmd.args[1].c_str(), cmd.args[2].c_str(), *want, got));
        }
      } else if (what == "flagged") {
        if (cmd.args.size() < 3) return fail(cmd, "expect flagged <uid> true|false");
        if (rt.daemon == nullptr) return fail(cmd, "no defense daemon installed");
        const auto uid = to_long(cmd.args[1]);
        if (!uid) return fail(cmd, "bad uid");
        const bool want = cmd.args[2] == "true";
        if (rt.daemon->neutralized(static_cast<int>(*uid)) != want) {
          return fail(cmd, "flagged state mismatch for uid " + cmd.args[1]);
        }
      } else {
        return fail(cmd, "unknown expectation '" + what + "'");
      }
    }
  }
  if (!trace_path.empty() && !sim::write_chrome_trace(rt.world.trace(), trace_path)) {
    result.error = {0, 0, "cannot write trace to " + trace_path};
    return result;
  }
  result.ok = true;
  return result;
}

ScenarioResult run_scenario(std::string_view text) {
  ScenarioError error;
  const auto scenario = Scenario::parse(text, &error);
  if (!scenario) {
    ScenarioResult r;
    r.error = error;
    return r;
  }
  return scenario->run();
}

}  // namespace animus::script
