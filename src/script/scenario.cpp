#include "script/scenario.hpp"

#include <charconv>
#include <map>

#include "device/registry.hpp"
#include "metrics/table.hpp"
#include "percept/outcomes.hpp"
#include "sim/chrome_trace.hpp"

namespace animus::script {
namespace {

std::vector<std::string> tokenize(std::string_view line) {
  std::vector<std::string> tokens;
  std::size_t i = 0;
  while (i < line.size()) {
    while (i < line.size() && std::isspace(static_cast<unsigned char>(line[i]))) ++i;
    if (i >= line.size() || line[i] == '#') break;
    if (line[i] == '"') {
      const auto end = line.find('"', i + 1);
      if (end == std::string_view::npos) {
        tokens.emplace_back(line.substr(i));  // unterminated; caller rejects
        return tokens;
      }
      tokens.emplace_back(line.substr(i + 1, end - i - 1));
      i = end + 1;
      continue;
    }
    std::size_t start = i;
    while (i < line.size() && !std::isspace(static_cast<unsigned char>(line[i]))) ++i;
    tokens.emplace_back(line.substr(start, i - start));
  }
  return tokens;
}

/// "key=value" accessor over a command's arguments.
std::optional<std::string_view> keyed(const std::vector<std::string>& args,
                                      std::string_view key) {
  for (const auto& a : args) {
    if (a.size() > key.size() + 1 && a.compare(0, key.size(), key) == 0 &&
        a[key.size()] == '=') {
      return std::string_view(a).substr(key.size() + 1);
    }
  }
  return std::nullopt;
}

std::optional<long> to_long(std::string_view s) {
  long v = 0;
  const auto [p, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
  if (ec != std::errc{} || p != s.data() + s.size()) return std::nullopt;
  return v;
}

std::optional<ui::Rect> to_rect(std::string_view s) {
  ui::Rect r;
  int* fields[4] = {&r.x, &r.y, &r.w, &r.h};
  std::size_t pos = 0;
  for (int f = 0; f < 4; ++f) {
    const auto comma = s.find(',', pos);
    const auto part = s.substr(pos, comma == std::string_view::npos ? s.size() - pos
                                                                    : comma - pos);
    const auto v = to_long(part);
    if (!v) return std::nullopt;
    *fields[f] = static_cast<int>(*v);
    if (f < 3) {
      if (comma == std::string_view::npos) return std::nullopt;
      pos = comma + 1;
    } else if (comma != std::string_view::npos) {
      return std::nullopt;
    }
  }
  return r;
}

const std::map<std::string, int, std::less<>>& verb_arity() {
  // verb -> minimum positional arguments (excluding key=value ones).
  static const std::map<std::string, int, std::less<>> kArity = {
      {"device", 1},      {"seed", 1},           {"deterministic", 1},
      {"grant-overlay", 1}, {"defense", 1},      {"attack", 1},
      {"window", 1},      {"tap", 2},            {"run", 1},
      {"stop-attacks", 0}, {"expect", 2},
      {"export-trace", 1},
  };
  return kArity;
}

struct Runtime {
  explicit Runtime(server::WorldConfig config) : world(std::move(config)) {}
  server::World world;
  std::vector<std::unique_ptr<core::OverlayAttack>> overlay_attacks;
  std::vector<std::unique_ptr<core::ToastAttack>> toast_attacks;
  std::unique_ptr<defense::DefenseDaemon> daemon;
  int captures = 0;
};

}  // namespace

std::optional<Scenario> Scenario::parse(std::string_view text, ScenarioError* error) {
  Scenario scenario;
  std::size_t line_no = 0;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const auto nl = text.find('\n', pos);
    const auto line = text.substr(pos, nl == std::string_view::npos ? text.size() - pos
                                                                    : nl - pos);
    ++line_no;
    pos = nl == std::string_view::npos ? text.size() + 1 : nl + 1;

    auto tokens = tokenize(line);
    if (tokens.empty()) continue;
    if (!tokens.back().empty() && tokens.back().front() == '"') {
      if (error != nullptr) *error = {line_no, "unterminated quote"};
      return std::nullopt;
    }
    Command cmd;
    cmd.line = line_no;
    cmd.verb = tokens.front();
    cmd.args.assign(tokens.begin() + 1, tokens.end());

    const auto arity = verb_arity().find(cmd.verb);
    if (arity == verb_arity().end()) {
      if (error != nullptr) *error = {line_no, "unknown command '" + cmd.verb + "'"};
      return std::nullopt;
    }
    int positional = 0;
    for (const auto& a : cmd.args) {
      positional += a.find('=') == std::string::npos;
    }
    if (positional < arity->second) {
      if (error != nullptr) {
        *error = {line_no, "'" + cmd.verb + "' needs at least " +
                               std::to_string(arity->second) + " arguments"};
      }
      return std::nullopt;
    }
    scenario.commands_.push_back(std::move(cmd));
  }
  return scenario;
}

ScenarioResult Scenario::run() const {
  ScenarioResult result;
  // Pre-scan configuration commands that must precede world creation.
  server::WorldConfig config;
  config.profile = device::reference_device_android9();
  config.trace_enabled = false;
  for (const auto& cmd : commands_) {
    if (cmd.verb == "device") {
      std::optional<device::DeviceProfile> dev;
      if (cmd.args.size() >= 2) {
        for (const auto& d : device::all_devices()) {
          if (d.model == cmd.args[0] &&
              device::to_string(d.version) == cmd.args[1]) {
            dev = d;
          }
        }
      } else {
        dev = device::find_device(cmd.args[0]);
      }
      if (!dev) {
        result.error = {cmd.line, "unknown device '" + cmd.args[0] + "'"};
        return result;
      }
      config.profile = *dev;
    } else if (cmd.verb == "seed") {
      const auto v = to_long(cmd.args[0]);
      if (!v) {
        result.error = {cmd.line, "bad seed"};
        return result;
      }
      config.seed = static_cast<std::uint64_t>(*v);
    } else if (cmd.verb == "deterministic") {
      config.deterministic = cmd.args[0] == "on";
    } else if (cmd.verb == "export-trace") {
      config.trace_enabled = true;
    }
  }

  Runtime rt{config};
  auto fail = [&result](std::size_t line, std::string msg) {
    result.error = {line, std::move(msg)};
    return result;
  };
  auto log = [&result, &rt](const Command& cmd) {
    result.log += metrics::fmt("%8.1fms  %s", sim::to_ms(rt.world.now()), cmd.verb.c_str());
    for (const auto& a : cmd.args) result.log += " " + a;
    result.log += '\n';
  };

  std::string trace_path;
  for (const auto& cmd : commands_) {
    log(cmd);
    if (cmd.verb == "device" || cmd.verb == "seed" || cmd.verb == "deterministic") {
      continue;  // consumed during pre-scan
    }
    if (cmd.verb == "export-trace") {
      trace_path = cmd.args[0];
      continue;
    }
    if (cmd.verb == "grant-overlay") {
      const auto uid = to_long(cmd.args[0]);
      if (!uid) return fail(cmd.line, "bad uid");
      rt.world.server().grant_overlay_permission(static_cast<int>(*uid));
    } else if (cmd.verb == "defense") {
      if (cmd.args[0] == "notification") {
        const auto t = cmd.args.size() > 1 ? to_long(cmd.args[1]) : std::optional<long>(690);
        if (!t) return fail(cmd.line, "bad delay");
        rt.world.server().set_alert_removal_delay(sim::ms(*t));
      } else if (cmd.args[0] == "toast-gap") {
        const auto t = cmd.args.size() > 1 ? to_long(cmd.args[1]) : std::optional<long>(500);
        if (!t) return fail(cmd.line, "bad gap");
        rt.world.nms().set_inter_toast_gap(sim::ms(*t));
      } else if (cmd.args[0] == "daemon") {
        rt.daemon = std::make_unique<defense::DefenseDaemon>(rt.world);
        rt.daemon->install();
      } else {
        return fail(cmd.line, "unknown defense '" + cmd.args[0] + "'");
      }
    } else if (cmd.verb == "window") {
      if (cmd.args[0] != "activity") return fail(cmd.line, "only 'window activity' supported");
      const auto uid = keyed(cmd.args, "uid");
      const auto bounds = keyed(cmd.args, "bounds");
      if (!uid || !to_long(*uid)) return fail(cmd.line, "window needs uid=");
      const auto rect = bounds ? to_rect(*bounds) : std::optional<ui::Rect>(ui::Rect{0, 0, 1080, 2280});
      if (!rect) return fail(cmd.line, "bad bounds");
      ui::Window w;
      w.owner_uid = static_cast<int>(*to_long(*uid));
      w.type = ui::WindowType::kActivity;
      w.bounds = *rect;
      w.content = "script:activity";
      rt.world.wms().add_window_now(std::move(w));
    } else if (cmd.verb == "attack") {
      const auto at = keyed(cmd.args, "at");
      const auto delay = at ? to_long(*at) : std::optional<long>(0);
      if (!delay) return fail(cmd.line, "bad at=");
      if (cmd.args[0] == "overlay") {
        core::OverlayAttackConfig oc;
        if (const auto d = keyed(cmd.args, "d")) {
          const auto v = to_long(*d);
          if (!v) return fail(cmd.line, "bad d=");
          oc.attacking_window = sim::ms(*v);
        }
        if (const auto b = keyed(cmd.args, "bounds")) {
          const auto r = to_rect(*b);
          if (!r) return fail(cmd.line, "bad bounds=");
          oc.bounds = *r;
        }
        if (const auto u = keyed(cmd.args, "uid")) {
          const auto v = to_long(*u);
          if (!v) return fail(cmd.line, "bad uid=");
          oc.uid = static_cast<int>(*v);
        }
        oc.on_capture = [&rt](sim::SimTime, ui::Point) { ++rt.captures; };
        rt.overlay_attacks.push_back(std::make_unique<core::OverlayAttack>(rt.world, oc));
        auto* attack = rt.overlay_attacks.back().get();
        rt.world.loop().schedule_after(sim::ms(*delay), [attack] { attack->start(); });
      } else if (cmd.args[0] == "toast") {
        core::ToastAttackConfig tc;
        if (const auto d = keyed(cmd.args, "duration")) {
          const auto v = to_long(*d);
          if (!v) return fail(cmd.line, "bad duration=");
          tc.toast_duration = sim::ms(*v);
        }
        if (const auto c = keyed(cmd.args, "content")) tc.content = std::string(*c);
        if (const auto b = keyed(cmd.args, "bounds")) {
          const auto r = to_rect(*b);
          if (!r) return fail(cmd.line, "bad bounds=");
          tc.bounds = *r;
        }
        rt.toast_attacks.push_back(std::make_unique<core::ToastAttack>(rt.world, tc));
        auto* attack = rt.toast_attacks.back().get();
        rt.world.loop().schedule_after(sim::ms(*delay), [attack] { attack->start(); });
      } else {
        return fail(cmd.line, "unknown attack '" + cmd.args[0] + "'");
      }
    } else if (cmd.verb == "tap") {
      const auto x = to_long(cmd.args[0]);
      const auto y = to_long(cmd.args[1]);
      if (!x || !y) return fail(cmd.line, "bad coordinates");
      const auto at = keyed(cmd.args, "at");
      const auto delay = at ? to_long(*at) : std::optional<long>(0);
      if (!delay) return fail(cmd.line, "bad at=");
      const ui::Point p{static_cast<int>(*x), static_cast<int>(*y)};
      rt.world.loop().schedule_after(sim::ms(*delay),
                                     [&rt, p] { rt.world.input().inject_tap(p); });
    } else if (cmd.verb == "run") {
      const auto v = to_long(cmd.args[0]);
      if (!v) return fail(cmd.line, "bad duration");
      rt.world.run_until(rt.world.now() + sim::ms(*v));
    } else if (cmd.verb == "stop-attacks") {
      for (auto& a : rt.overlay_attacks) a->stop();
      for (auto& a : rt.toast_attacks) a->stop();
    } else if (cmd.verb == "expect") {
      ++result.expects_checked;
      const std::string& what = cmd.args[0];
      if (what == "alert") {
        const auto snapshot = rt.world.system_ui().snapshot(server::kMalwareUid);
        const auto got = percept::classify(snapshot);
        const std::string want = cmd.args[1];
        const std::string got_s = "L" + std::to_string(static_cast<int>(got));
        if (got_s != want) {
          return fail(cmd.line, "expected alert " + want + ", got " + got_s);
        }
      } else if (what == "captures") {
        // expect captures >= N | == N
        if (cmd.args.size() < 3) return fail(cmd.line, "expect captures <op> <n>");
        const auto n = to_long(cmd.args[2]);
        if (!n) return fail(cmd.line, "bad count");
        const bool ok = cmd.args[1] == ">=" ? rt.captures >= *n
                        : cmd.args[1] == "==" ? rt.captures == *n
                                              : false;
        if (!ok) {
          return fail(cmd.line, metrics::fmt("expected captures %s %ld, got %d",
                                             cmd.args[1].c_str(), *n, rt.captures));
        }
      } else if (what == "overlays") {
        if (cmd.args.size() < 4) return fail(cmd.line, "expect overlays <uid> <op> <n>");
        const auto uid = to_long(cmd.args[1]);
        const auto n = to_long(cmd.args[3]);
        if (!uid || !n) return fail(cmd.line, "bad arguments");
        const int got = rt.world.wms().overlay_count(static_cast<int>(*uid));
        const bool ok = cmd.args[2] == ">=" ? got >= *n
                        : cmd.args[2] == "==" ? got == *n
                                              : false;
        if (!ok) {
          return fail(cmd.line, metrics::fmt("expected overlays(%ld) %s %ld, got %d", *uid,
                                             cmd.args[2].c_str(), *n, got));
        }
      } else if (what == "flagged") {
        if (cmd.args.size() < 3) return fail(cmd.line, "expect flagged <uid> true|false");
        if (rt.daemon == nullptr) return fail(cmd.line, "no defense daemon installed");
        const auto uid = to_long(cmd.args[1]);
        if (!uid) return fail(cmd.line, "bad uid");
        const bool want = cmd.args[2] == "true";
        if (rt.daemon->neutralized(static_cast<int>(*uid)) != want) {
          return fail(cmd.line, "flagged state mismatch for uid " + cmd.args[1]);
        }
      } else {
        return fail(cmd.line, "unknown expectation '" + what + "'");
      }
    }
  }
  if (!trace_path.empty() && !sim::write_chrome_trace(rt.world.trace(), trace_path)) {
    result.error = {0, "cannot write trace to " + trace_path};
    return result;
  }
  result.ok = true;
  return result;
}

ScenarioResult run_scenario(std::string_view text) {
  ScenarioError error;
  const auto scenario = Scenario::parse(text, &error);
  if (!scenario) {
    ScenarioResult r;
    r.error = error;
    return r;
  }
  return scenario->run();
}

}  // namespace animus::script
