// Random password generation matching the paper's user study: "a
// password is random and may contain lower case and upper case
// characters, numbers and special symbols on different sub-keyboards"
// (Section I / VI-C1). Every emitted character is typeable on the
// simulated keyboard.
#pragma once

#include <string>

#include "sim/rng.hpp"

namespace animus::input {

struct PasswordClasses {
  bool lower = true;
  bool upper = true;
  bool digits = true;
  bool symbols = true;
};

/// Characters available per class (symbols mirror the keyboard's "?123"
/// board, which includes the paper's demo password characters & and %).
std::string_view password_lower();
std::string_view password_upper();
std::string_view password_digits();
std::string_view password_symbols();

/// Random password of `length` drawing from the enabled classes; for
/// length >= number of enabled classes, at least one character of each
/// enabled class is guaranteed (mixed-class passwords exercise the
/// sub-keyboard switching the attack must mirror).
std::string random_password(std::size_t length, sim::Rng& rng,
                            PasswordClasses classes = {});

}  // namespace animus::input
