#include "input/keyboard.hpp"

#include <cassert>
#include <cctype>
#include <cmath>
#include <limits>

namespace animus::input {

std::string_view to_string(LayoutKind k) {
  switch (k) {
    case LayoutKind::kLower: return "lower";
    case LayoutKind::kUpper: return "upper";
    case LayoutKind::kSymbols: return "symbols";
  }
  return "?";
}

std::string_view to_string(Key::Kind k) {
  switch (k) {
    case Key::Kind::kChar: return "char";
    case Key::Kind::kShift: return "shift";
    case Key::Kind::kSymbols: return "symbols";
    case Key::Kind::kLetters: return "letters";
    case Key::Kind::kBackspace: return "backspace";
    case Key::Kind::kEnter: return "enter";
    case Key::Kind::kSpace: return "space";
  }
  return "?";
}

KeyboardLayout::KeyboardLayout(LayoutKind kind, std::vector<Key> keys)
    : kind_(kind), keys_(std::move(keys)) {
  assert(!keys_.empty());
}

const Key* KeyboardLayout::key_at(ui::Point p) const {
  for (const auto& k : keys_) {
    if (k.bounds.contains(p)) return &k;
  }
  return nullptr;
}

const Key& KeyboardLayout::nearest(ui::Point p) const {
  const Key* best = &keys_.front();
  double best_d = std::numeric_limits<double>::max();
  for (const auto& k : keys_) {
    const double d = ui::distance(k.center(), p);
    if (d < best_d) {
      best_d = d;
      best = &k;
    }
  }
  return *best;
}

const Key* KeyboardLayout::find_char(char c) const {
  for (const auto& k : keys_) {
    if ((k.kind == Key::Kind::kChar || k.kind == Key::Kind::kSpace) && k.ch == c) return &k;
  }
  return nullptr;
}

const Key* KeyboardLayout::find_kind(Key::Kind kind) const {
  for (const auto& k : keys_) {
    if (k.kind == kind) return &k;
  }
  return nullptr;
}

namespace {

/// Characters on the symbols board, row by row.
constexpr std::string_view kSymRow1 = "1234567890";
constexpr std::string_view kSymRow2 = "@#$%&-+()";
constexpr std::string_view kSymRow3 = "*\"':;!?";

struct RowBuilder {
  std::vector<Key>* keys;
  ui::Rect kb;
  int row_h;

  void chars(int row, std::string_view cs, int left_pad_keys_halves = 0) {
    const int n = static_cast<int>(cs.size());
    const int key_w = kb.w / 10;
    const int x0 = kb.x + left_pad_keys_halves * key_w / 2;
    for (int i = 0; i < n; ++i) {
      Key k;
      k.kind = Key::Kind::kChar;
      k.ch = cs[static_cast<std::size_t>(i)];
      k.label = std::string(1, k.ch);
      k.bounds = ui::Rect{x0 + i * key_w, kb.y + row * row_h, key_w, row_h};
      keys->push_back(k);
    }
  }

  void special(int row, Key::Kind kind, std::string label, int x_keys_tenths, int w_keys_tenths,
               char ch = '\0') {
    Key k;
    k.kind = kind;
    k.ch = ch;
    k.label = std::move(label);
    k.bounds = ui::Rect{kb.x + kb.w * x_keys_tenths / 10, kb.y + row * row_h,
                        kb.w * w_keys_tenths / 10, row_h};
    keys->push_back(k);
  }
};

std::vector<Key> build_layout(LayoutKind kind, ui::Rect kb) {
  std::vector<Key> keys;
  const int row_h = kb.h / 4;
  RowBuilder rb{&keys, kb, row_h};
  switch (kind) {
    case LayoutKind::kLower:
    case LayoutKind::kUpper: {
      const bool upper = kind == LayoutKind::kUpper;
      auto cased = [upper](std::string_view s) {
        std::string out(s);
        if (upper) {
          for (char& c : out) c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
        }
        return out;
      };
      rb.chars(0, cased("qwertyuiop"));
      rb.chars(1, cased("asdfghjkl"), 1);
      rb.special(2, Key::Kind::kShift, "shift", 0, 1);
      {
        // z..m sit between shift and backspace.
        const std::string row3 = cased("zxcvbnm");
        const int key_w = kb.w / 10;
        const int x0 = kb.x + key_w * 3 / 2;
        for (std::size_t i = 0; i < row3.size(); ++i) {
          Key k;
          k.kind = Key::Kind::kChar;
          k.ch = row3[i];
          k.label = std::string(1, k.ch);
          k.bounds = ui::Rect{x0 + static_cast<int>(i) * key_w, kb.y + 2 * row_h, key_w, row_h};
          keys.push_back(k);
        }
      }
      rb.special(2, Key::Kind::kBackspace, "bksp", 9, 1);
      break;
    }
    case LayoutKind::kSymbols: {
      rb.chars(0, kSymRow1);
      rb.chars(1, kSymRow2, 1);
      {
        const int key_w = kb.w / 10;
        const int x0 = kb.x + key_w * 3 / 2;
        for (std::size_t i = 0; i < kSymRow3.size(); ++i) {
          Key k;
          k.kind = Key::Kind::kChar;
          k.ch = kSymRow3[i];
          k.label = std::string(1, k.ch);
          k.bounds = ui::Rect{x0 + static_cast<int>(i) * key_w, kb.y + 2 * row_h, key_w, row_h};
          keys.push_back(k);
        }
      }
      rb.special(2, Key::Kind::kBackspace, "bksp", 9, 1);
      break;
    }
  }
  // Bottom row is shared by every board: mode switch, comma, space,
  // period, enter.
  const bool symbols = kind == LayoutKind::kSymbols;
  rb.special(3, symbols ? Key::Kind::kLetters : Key::Kind::kSymbols, symbols ? "ABC" : "?123",
             0, 2);
  rb.special(3, Key::Kind::kChar, ",", 2, 1, ',');
  rb.special(3, Key::Kind::kSpace, "space", 3, 4, ' ');
  rb.special(3, Key::Kind::kChar, ".", 7, 1, '.');
  rb.special(3, Key::Kind::kEnter, "enter", 8, 2);
  return keys;
}

}  // namespace

Keyboard::Keyboard(ui::Rect bounds) : bounds_(bounds) {
  layouts_.emplace_back(LayoutKind::kLower, build_layout(LayoutKind::kLower, bounds));
  layouts_.emplace_back(LayoutKind::kUpper, build_layout(LayoutKind::kUpper, bounds));
  layouts_.emplace_back(LayoutKind::kSymbols, build_layout(LayoutKind::kSymbols, bounds));
}

const KeyboardLayout& Keyboard::layout(LayoutKind k) const {
  return layouts_[static_cast<std::size_t>(static_cast<int>(k))];
}

std::optional<LayoutKind> Keyboard::required_layout(char c) {
  const auto uc = static_cast<unsigned char>(c);
  if (c == ' ' || c == ',' || c == '.') return std::nullopt;  // on every board
  if (std::islower(uc)) return LayoutKind::kLower;
  if (std::isupper(uc)) return LayoutKind::kUpper;
  if (std::isdigit(uc)) return LayoutKind::kSymbols;
  if (kSymRow2.find(c) != std::string_view::npos || kSymRow3.find(c) != std::string_view::npos) {
    return LayoutKind::kSymbols;
  }
  return std::nullopt;
}

bool Keyboard::typeable(char c) {
  if (c == ' ' || c == ',' || c == '.') return true;
  const auto uc = static_cast<unsigned char>(c);
  if (std::islower(uc) || std::isupper(uc) || std::isdigit(uc)) return true;
  return kSymRow2.find(c) != std::string_view::npos ||
         kSymRow3.find(c) != std::string_view::npos;
}

KeyboardState::PressResult KeyboardState::press(const Key& key) {
  PressResult r;
  switch (key.kind) {
    case Key::Kind::kChar:
    case Key::Kind::kSpace:
      r.ch = key.ch;
      if (current_ == LayoutKind::kUpper && key.kind == Key::Kind::kChar) {
        current_ = LayoutKind::kLower;  // shift auto-reverts
        r.layout_changed = true;
      }
      return r;
    case Key::Kind::kShift:
      if (current_ == LayoutKind::kLower) {
        current_ = LayoutKind::kUpper;
        r.layout_changed = true;
      } else if (current_ == LayoutKind::kUpper) {
        current_ = LayoutKind::kLower;
        r.layout_changed = true;
      }
      return r;
    case Key::Kind::kSymbols:
      if (current_ != LayoutKind::kSymbols) {
        current_ = LayoutKind::kSymbols;
        r.layout_changed = true;
      }
      return r;
    case Key::Kind::kLetters:
      if (current_ != LayoutKind::kLower) {
        current_ = LayoutKind::kLower;
        r.layout_changed = true;
      }
      return r;
    case Key::Kind::kBackspace:
      r.backspace = true;
      return r;
    case Key::Kind::kEnter:
      r.enter = true;
      return r;
  }
  return r;
}

}  // namespace animus::input
