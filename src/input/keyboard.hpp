// Software keyboard geometry and layout state machine.
//
// The password-stealing attack (Section V) depends on keyboard geometry
// twice: the attacker "derives the center coordinate of each key on the
// real keyboard by performing an offline analysis of the keyboard layout
// in advance", and then decodes each intercepted touch as the key whose
// center has the smallest Euclidean distance. The fake keyboard rendered
// with toasts uses the *same* layouts, aligned with the real keyboard.
//
// Three sub-keyboards are modelled (lower-case, upper-case via shift,
// and the "?123" symbols board), with the standard Android behaviour
// that a non-latched shift reverts to lower case after one character.
#pragma once

#include <optional>
#include <span>
#include <string>
#include <vector>

#include "ui/geometry.hpp"

namespace animus::input {

enum class LayoutKind : int { kLower = 0, kUpper = 1, kSymbols = 2 };

std::string_view to_string(LayoutKind k);

struct Key {
  enum class Kind { kChar, kShift, kSymbols, kLetters, kBackspace, kEnter, kSpace };

  Kind kind = Kind::kChar;
  char ch = '\0';      // for kChar keys (and ' ' for kSpace)
  std::string label;   // display label ("A", "?123", "shift", ...)
  ui::Rect bounds{};

  [[nodiscard]] ui::Point center() const { return bounds.center(); }
};

std::string_view to_string(Key::Kind k);

/// Geometry of one sub-keyboard.
class KeyboardLayout {
 public:
  KeyboardLayout(LayoutKind kind, std::vector<Key> keys);

  [[nodiscard]] LayoutKind kind() const { return kind_; }
  [[nodiscard]] std::span<const Key> keys() const { return keys_; }

  /// Key whose bounds contain `p` (how the real keyboard resolves a tap).
  [[nodiscard]] const Key* key_at(ui::Point p) const;

  /// Key with the smallest Euclidean distance from center to `p` (how
  /// the attacker decodes an intercepted coordinate, Section V).
  [[nodiscard]] const Key& nearest(ui::Point p) const;

  /// The key that types character `c` in this layout, if any.
  [[nodiscard]] const Key* find_char(char c) const;

  /// First key of the given kind, if present.
  [[nodiscard]] const Key* find_kind(Key::Kind k) const;

 private:
  LayoutKind kind_;
  std::vector<Key> keys_;
};

/// The full keyboard: three aligned sub-keyboards sharing one screen rect.
class Keyboard {
 public:
  /// Build the standard QWERTY geometry inside `bounds`.
  explicit Keyboard(ui::Rect bounds);

  [[nodiscard]] const KeyboardLayout& layout(LayoutKind k) const;
  [[nodiscard]] ui::Rect bounds() const { return bounds_; }

  /// Which sub-keyboard is needed to type `c`; nullopt if untypeable.
  [[nodiscard]] static std::optional<LayoutKind> required_layout(char c);

  /// Whether `c` can be typed on this keyboard at all.
  [[nodiscard]] static bool typeable(char c);

 private:
  ui::Rect bounds_;
  std::vector<KeyboardLayout> layouts_;
};

/// Layout-tracking state machine shared by the real IME, the attacker's
/// fake keyboard, and the attacker's decoder.
class KeyboardState {
 public:
  struct PressResult {
    std::optional<char> ch;  // character produced, if any
    bool backspace = false;
    bool enter = false;
    bool layout_changed = false;
  };

  [[nodiscard]] LayoutKind current() const { return current_; }
  void reset(LayoutKind k = LayoutKind::kLower) { current_ = k; }

  /// Apply a key press and advance the layout state (shift reverts after
  /// one character; "?123" and "ABC" switch boards; shift from symbols
  /// is a no-op).
  PressResult press(const Key& key);

 private:
  LayoutKind current_ = LayoutKind::kLower;
};

}  // namespace animus::input
