#include "input/typist.hpp"

#include <algorithm>
#include <cmath>

#include "metrics/table.hpp"

namespace animus::input {

std::vector<TypistProfile> participant_panel(std::size_t n, std::uint64_t seed) {
  std::vector<TypistProfile> panel;
  panel.reserve(n);
  sim::Rng rng{seed};
  for (std::size_t i = 0; i < n; ++i) {
    sim::Rng r = rng.fork(i + 1);
    TypistProfile p;
    p.name = metrics::fmt("P%02zu", i + 1);
    p.inter_key_mean_ms = r.truncated_normal(310.0, 70.0, 180.0, 520.0);
    p.inter_key_sd_ms = r.truncated_normal(75.0, 20.0, 35.0, 130.0);
    p.jitter_frac = r.truncated_normal(0.08, 0.02, 0.04, 0.13);
    p.misspell_rate = r.truncated_normal(0.0025, 0.0015, 0.0, 0.008);
    panel.push_back(p);
  }
  return panel;
}

Typist::Typist(TypistProfile profile, sim::Rng rng)
    : profile_(std::move(profile)), rng_(rng) {}

sim::SimTime Typist::next_gap() {
  const double g = rng_.truncated_normal(profile_.inter_key_mean_ms, profile_.inter_key_sd_ms,
                                         profile_.inter_key_min_ms,
                                         profile_.inter_key_mean_ms + 4 * profile_.inter_key_sd_ms);
  return sim::ms_f(g);
}

ui::Point Typist::jittered(const Key& key) {
  const ui::Point c = key.center();
  const double sx = profile_.jitter_frac * key.bounds.w;
  const double sy = profile_.jitter_frac * key.bounds.h;
  return ui::Point{c.x + static_cast<int>(std::lround(rng_.normal(0.0, sx))),
                   c.y + static_cast<int>(std::lround(rng_.normal(0.0, sy)))};
}

std::vector<PlannedTouch> Typist::plan(const Keyboard& keyboard, const std::string& text,
                                       sim::SimTime start, bool press_enter) {
  std::vector<PlannedTouch> touches;
  KeyboardState state;
  sim::SimTime t = start;

  auto emit = [&](const Key& key, char intended, bool misspelled) {
    PlannedTouch pt;
    pt.at = t;
    pt.intended = intended;
    pt.intended_kind = key.kind;
    pt.misspelled = misspelled;
    if (misspelled) {
      // The finger lands on a random character key of the current board;
      // the typist's mental layout state still follows their intent.
      const auto& layout = keyboard.layout(state.current());
      const Key* wrong = &layout.keys()[rng_.index(layout.keys().size())];
      for (int tries = 0; tries < 8 && wrong->kind != Key::Kind::kChar; ++tries) {
        wrong = &layout.keys()[rng_.index(layout.keys().size())];
      }
      pt.point = jittered(*wrong);
    } else {
      pt.point = jittered(key);
    }
    state.press(key);
    touches.push_back(pt);
    t += next_gap();
  };

  for (char c : text) {
    if (!Keyboard::typeable(c)) continue;
    // Reach the sub-keyboard that carries `c`.
    for (int guard = 0; guard < 3; ++guard) {
      const auto needed = Keyboard::required_layout(c);
      if (!needed || *needed == state.current()) break;
      const auto& layout = keyboard.layout(state.current());
      const Key* mode = nullptr;
      if (*needed == LayoutKind::kSymbols) {
        mode = layout.find_kind(Key::Kind::kSymbols);
      } else if (state.current() == LayoutKind::kSymbols) {
        mode = layout.find_kind(Key::Kind::kLetters);  // then maybe shift
      } else {
        mode = layout.find_kind(Key::Kind::kShift);
      }
      if (mode == nullptr) break;
      emit(*mode, '\0', false);
    }
    const Key* key = keyboard.layout(state.current()).find_char(c);
    if (key == nullptr) continue;  // unreachable for generator output
    emit(*key, c, rng_.bernoulli(profile_.misspell_rate));
  }
  if (press_enter) {
    const Key* enter = keyboard.layout(state.current()).find_kind(Key::Kind::kEnter);
    if (enter != nullptr) emit(*enter, '\0', false);
  }
  return touches;
}

std::vector<PlannedTouch> Typist::plan_taps(ui::Rect area, std::size_t n, sim::SimTime start) {
  std::vector<PlannedTouch> touches;
  touches.reserve(n);
  sim::SimTime t = start;
  for (std::size_t i = 0; i < n; ++i) {
    PlannedTouch pt;
    pt.at = t;
    pt.point = ui::Point{
        static_cast<int>(rng_.uniform_int(area.x, area.x + std::max(1, area.w) - 1)),
        static_cast<int>(rng_.uniform_int(area.y, area.y + std::max(1, area.h) - 1))};
    pt.intended = '?';
    touches.push_back(pt);
    t += next_gap();
  }
  return touches;
}

}  // namespace animus::input
