// Stochastic human typing model — the simulation's stand-in for the
// paper's 30 user-study participants.
//
// A typist converts a target string into a timed sequence of screen
// touches against the (fake or real) keyboard geometry: mode-switch keys
// are inserted where the current sub-keyboard lacks the next character,
// touch points scatter around key centers with per-participant jitter,
// and occasional misspellings target an adjacent key. Inter-key timing is
// a truncated normal per participant (the paper models total attack time
// as T = S x L, typing speed times password length).
#pragma once

#include <string>
#include <vector>

#include "input/keyboard.hpp"
#include "sim/rng.hpp"
#include "sim/time.hpp"

namespace animus::input {

struct TypistProfile {
  std::string name = "participant";
  double inter_key_mean_ms = 300.0;
  double inter_key_sd_ms = 80.0;
  double inter_key_min_ms = 120.0;
  /// Touch scatter as a fraction of key width/height (std dev).
  double jitter_frac = 0.10;
  /// Probability a key press targets an adjacent key by mistake.
  double misspell_rate = 0.004;
};

/// The 30-participant panel of Section VI-A (ages 22-33, seeded
/// per-participant variation in speed and accuracy).
std::vector<TypistProfile> participant_panel(std::size_t n = 30, std::uint64_t seed = 2022);

struct PlannedTouch {
  sim::SimTime at{0};
  ui::Point point{};
  char intended = '\0';        // '\0' for mode keys
  Key::Kind intended_kind = Key::Kind::kChar;
  bool misspelled = false;
};

class Typist {
 public:
  Typist(TypistProfile profile, sim::Rng rng);

  /// Plan the touches that type `text` starting at `start` from the
  /// lower-case layout, optionally pressing enter at the end. Characters
  /// the keyboard cannot type are skipped (none, for our generators).
  std::vector<PlannedTouch> plan(const Keyboard& keyboard, const std::string& text,
                                 sim::SimTime start, bool press_enter = false);

  /// Plan `n` free-form taps uniformly inside `area` (the capture-rate
  /// test app of Section VI-B: random strings into an input widget).
  std::vector<PlannedTouch> plan_taps(ui::Rect area, std::size_t n, sim::SimTime start);

  [[nodiscard]] const TypistProfile& profile() const { return profile_; }

 private:
  sim::SimTime next_gap();
  ui::Point jittered(const Key& key);

  TypistProfile profile_;
  sim::Rng rng_;
};

}  // namespace animus::input
