// The real software keyboard (input method editor) as an on-screen,
// touchable window.
//
// In the password-stealing attack the real keyboard sits *under* the
// attacker's fake-keyboard toast and transparent overlays, so it normally
// receives nothing; but during a mistouch gap a tap falls through to it
// and types a real character into the focused widget — one of the error
// sources of Table III.
#pragma once

#include <functional>
#include <string>

#include "input/keyboard.hpp"
#include "server/world.hpp"

namespace animus::input {

class SoftKeyboard {
 public:
  /// Sink receiving the effects of real key presses.
  using TextSink = std::function<void(const KeyboardState::PressResult&)>;

  /// `bounds`: the keyboard rect (the fake keyboard must align with it).
  SoftKeyboard(server::World& world, ui::Rect bounds);

  /// Place the IME window on screen / remove it.
  void show();
  void hide();
  [[nodiscard]] bool visible() const { return window_ != ui::kInvalidWindow; }

  void set_text_sink(TextSink sink) { sink_ = std::move(sink); }

  [[nodiscard]] const Keyboard& keyboard() const { return keyboard_; }
  [[nodiscard]] LayoutKind current_layout() const { return state_.current(); }
  [[nodiscard]] ui::WindowId window_id() const { return window_; }

  /// Keys actually pressed on the real keyboard (fell through an attack,
  /// or no attack running).
  [[nodiscard]] int presses() const { return presses_; }

 private:
  void on_touch(sim::SimTime t, ui::Point p);

  server::World* world_;
  Keyboard keyboard_;
  KeyboardState state_;
  TextSink sink_;
  ui::WindowId window_ = ui::kInvalidWindow;
  int presses_ = 0;
};

}  // namespace animus::input
