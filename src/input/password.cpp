#include "input/password.hpp"

#include <algorithm>
#include <vector>

namespace animus::input {

std::string_view password_lower() { return "abcdefghijklmnopqrstuvwxyz"; }
std::string_view password_upper() { return "ABCDEFGHIJKLMNOPQRSTUVWXYZ"; }
std::string_view password_digits() { return "0123456789"; }
std::string_view password_symbols() { return "@#$%&-+()*\"':;!?"; }

std::string random_password(std::size_t length, sim::Rng& rng, PasswordClasses classes) {
  std::vector<std::string_view> pools;
  if (classes.lower) pools.push_back(password_lower());
  if (classes.upper) pools.push_back(password_upper());
  if (classes.digits) pools.push_back(password_digits());
  if (classes.symbols) pools.push_back(password_symbols());
  if (pools.empty() || length == 0) return {};

  std::string out(length, '\0');
  for (std::size_t i = 0; i < length; ++i) {
    const std::string_view pool = pools[rng.index(pools.size())];
    out[i] = pool[rng.index(pool.size())];
  }
  // Guarantee one character of each class when the password is long
  // enough, by overwriting distinct positions.
  if (length >= pools.size()) {
    std::vector<std::size_t> positions(length);
    for (std::size_t i = 0; i < length; ++i) positions[i] = i;
    // Deterministic Fisher-Yates with the caller's rng.
    for (std::size_t i = length; i > 1; --i) {
      std::swap(positions[i - 1], positions[rng.index(i)]);
    }
    for (std::size_t c = 0; c < pools.size(); ++c) {
      out[positions[c]] = pools[c][rng.index(pools[c].size())];
    }
  }
  return out;
}

}  // namespace animus::input
