#include "input/ime.hpp"

#include "metrics/table.hpp"

namespace animus::input {

SoftKeyboard::SoftKeyboard(server::World& world, ui::Rect bounds)
    : world_(&world), keyboard_(bounds) {}

void SoftKeyboard::show() {
  if (window_ != ui::kInvalidWindow) return;
  ui::Window w;
  w.owner_uid = server::kImeUid;
  w.type = ui::WindowType::kInputMethod;
  w.bounds = keyboard_.bounds();
  w.content = "ime:keyboard";
  w.on_touch = [this](sim::SimTime t, ui::Point p) { on_touch(t, p); };
  window_ = world_->wms().add_window_now(std::move(w));
  state_.reset();
}

void SoftKeyboard::hide() {
  if (window_ == ui::kInvalidWindow) return;
  world_->wms().remove_window_now(window_);
  window_ = ui::kInvalidWindow;
}

void SoftKeyboard::on_touch(sim::SimTime, ui::Point p) {
  const KeyboardLayout& layout = keyboard_.layout(state_.current());
  const Key* key = layout.key_at(p);
  if (key == nullptr) return;  // dead zone between keys
  ++presses_;
  const auto result = state_.press(*key);
  if (world_->trace().enabled()) {
    world_->trace().record(world_->now(), sim::TraceCategory::kInput,
                           metrics::fmt("ime: press '%s' layout=%s", key->label.c_str(),
                                        std::string(to_string(state_.current())).c_str()));
  }
  if (sink_) sink_(result);
}

}  // namespace animus::input
