// Table I — the 30 evaluation devices, with the simulator's calibrated
// per-device timing parameters (Fig. 3 symbols).
#include <cstdio>

#include "device/registry.hpp"
#include "metrics/table.hpp"

int main() {
  using namespace animus;
  std::puts("=== Table I: devices in evaluation (with calibrated latencies) ===\n");
  metrics::Table table({"Manufacturer", "Model", "OS", "Tam", "Trm", "Tas", "Tn", "Tv",
                        "E[Tmis] (ms)"});
  for (const auto& d : device::all_devices()) {
    table.add_row({d.manufacturer, d.model, std::string(device::to_string(d.version)),
                   metrics::fmt("%.1f", d.tam.mean_ms), metrics::fmt("%.1f", d.trm.mean_ms),
                   metrics::fmt("%.1f", d.tas.mean_ms), metrics::fmt("%.1f", d.tn.mean_ms),
                   metrics::fmt("%.1f", d.tv.mean_ms),
                   metrics::fmt("%.1f", d.expected_tmis_ms())});
  }
  std::fputs(table.to_string().c_str(), stdout);
  std::printf("\n%zu devices; Tam < Trm everywhere (the add event overtakes the remove\n",
              device::all_devices().size());
  std::puts("event); E[Tmis] ~ 1 ms on Android 8/9 vs ~2 ms on Android 10/11 (reduced Trm).");
  std::puts("Note: versions follow Table II where Table I disagrees (pixel 2xl / pixel 4).");
  return 0;
}
