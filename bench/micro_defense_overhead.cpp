// Section VII-A claims the IPC defense's overhead is negligible. These
// google-benchmark microbenches measure the defense hot paths: the
// per-transaction Binder instrumentation cost, the online decision rule,
// and the end-to-end slowdown of a full attack simulation with the
// defense attached.
#include <benchmark/benchmark.h>

#include "core/overlay_attack.hpp"
#include "defense/ipc_defense.hpp"
#include "device/registry.hpp"
#include "server/world.hpp"

namespace {

using namespace animus;

void BM_TransactionRecord(benchmark::State& state) {
  ipc::TransactionLog log;
  sim::SimTime t{0};
  for (auto _ : state) {
    t += sim::ms(1);
    benchmark::DoNotOptimize(
        log.record(1, ipc::MethodCode::kAddView, "android.view.IWindowManager", t, t));
    if (log.size() > 1'000'000) {
      state.PauseTiming();
      log.clear();
      state.ResumeTiming();
    }
  }
  state.SetLabel("Binder instrumentation per call");
}
BENCHMARK(BM_TransactionRecord);

void BM_OnlineDecisionRule(benchmark::State& state) {
  defense::IpcDefenseAnalyzer analyzer;
  sim::SimTime t{0};
  bool add = false;
  for (auto _ : state) {
    t += sim::ms(75);
    ipc::Transaction tx;
    tx.caller_uid = 1;
    tx.code = add ? ipc::MethodCode::kAddView : ipc::MethodCode::kRemoveView;
    tx.sent = t;
    tx.delivered = t + sim::ms(3);
    add = !add;
    analyzer.observe(tx);
  }
  state.SetLabel("analyzer cost per transaction");
}
BENCHMARK(BM_OnlineDecisionRule);

void attack_run(bool with_defense) {
  server::WorldConfig wc;
  wc.profile = device::reference_device_android9();
  wc.trace_enabled = false;
  server::World world{wc};
  world.server().grant_overlay_permission(server::kMalwareUid);
  world.transactions().set_enabled(with_defense);
  defense::IpcDefenseAnalyzer analyzer;
  if (with_defense) analyzer.attach(world.transactions());
  core::OverlayAttack attack{world, {}};
  attack.start();
  world.run_until(sim::seconds(30));
  attack.stop();
  benchmark::DoNotOptimize(analyzer.flagged(server::kMalwareUid));
}

void BM_AttackSim30sNoDefense(benchmark::State& state) {
  for (auto _ : state) attack_run(false);
  state.SetLabel("30 s simulated attack, defense off");
}
BENCHMARK(BM_AttackSim30sNoDefense);

void BM_AttackSim30sWithDefense(benchmark::State& state) {
  for (auto _ : state) attack_run(true);
  state.SetLabel("30 s simulated attack, defense on (overhead = delta)");
}
BENCHMARK(BM_AttackSim30sWithDefense);

}  // namespace

BENCHMARK_MAIN();
