// Runner scaling study: the Fig. 7 workload (7 attacking windows x 30
// participants x 100 touches, one World per trial) executed through
// runner::sweep at 1, 2, 4, ... hardware_concurrency worker threads.
//
// Verifies the determinism contract on the way (every thread count must
// reproduce the jobs=1 results bit-for-bit) and reports wall-clock
// speedup and worker utilization per thread count. Speedup naturally
// tops out at the machine's physical core count.
#include <cstdio>
#include <thread>
#include <vector>

#include "core/report.hpp"
#include "device/registry.hpp"
#include "input/typist.hpp"
#include "metrics/table.hpp"
#include "runner/bench_cli.hpp"
#include "runner/runner.hpp"

int main(int argc, char** argv) {
  using namespace animus;
  const auto args = runner::BenchArgs::parse(argc, argv);
  const auto panel = input::participant_panel();
  const auto devices = device::all_devices();

  struct Trial {
    int d;
    std::size_t participant;
  };
  std::vector<Trial> trials;
  for (int d : {50, 75, 100, 125, 150, 175, 200})
    for (std::size_t p = 0; p < panel.size(); ++p) trials.push_back({d, p});

  const auto body = [&](const Trial& t, const runner::TrialContext& ctx) {
    core::CaptureTrialConfig c;
    c.profile = devices[t.participant % devices.size()];
    c.typist = panel[t.participant];
    c.attacking_window = sim::ms(t.d);
    c.touches = 100;
    c.seed = ctx.seed;
    return core::run_capture_trial(c).rate;
  };

  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  // 1, 2, 4, ... up to (and always including) hardware_concurrency;
  // --jobs N extends the ladder beyond the hardware if asked.
  std::vector<int> ladder;
  for (unsigned j = 1; j < hw; j *= 2) ladder.push_back(static_cast<int>(j));
  ladder.push_back(static_cast<int>(hw));
  if (args.run.jobs > static_cast<int>(hw)) ladder.push_back(args.run.jobs);

  std::printf("=== runner scaling: fig07 workload (%zu trials) on %u hardware threads ===\n\n",
              trials.size(), hw);
  metrics::Table table(
      {"jobs", "wall (ms)", "speedup", "trials/s", "mean ms/trial", "util", "identical"});
  std::vector<double> reference;
  double base_wall = 0.0;
  for (const int jobs : ladder) {
    runner::RunOptions opt = args.run;
    opt.jobs = jobs;
    const auto sw = runner::sweep(trials, body, opt);
    if (!sw.ok()) {
      std::fprintf(stderr, "jobs=%d: %zu trials failed\n", jobs, sw.errors.size());
      return 1;
    }
    if (reference.empty()) {
      reference = sw.results;
      base_wall = sw.stats.wall_ms;
    }
    const bool identical = sw.results == reference;  // bit-for-bit
    table.add_row({metrics::fmt("%d", jobs), metrics::fmt("%.1f", sw.stats.wall_ms),
                   metrics::fmt("%.2fx", base_wall / sw.stats.wall_ms),
                   metrics::fmt("%.1f", 1000.0 * static_cast<double>(trials.size()) /
                                            sw.stats.wall_ms),
                   metrics::fmt("%.2f", sw.stats.trial_ms.mean()),
                   metrics::fmt("%.0f%%", 100.0 * sw.stats.utilization()),
                   identical ? "yes" : "NO"});
    if (!identical) {
      std::fprintf(stderr, "jobs=%d: results differ from jobs=1 — determinism violated\n",
                   jobs);
      return 1;
    }
  }
  runner::emit(table, args);
  std::puts("\nDeterminism contract: every row must reproduce the jobs=1 results exactly.");
  runner::finish(args);
  return 0;
}
