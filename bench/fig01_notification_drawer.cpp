// Fig. 1 — the built-in notification defense, rendered: the status bar
// with its icon slots and the notification drawer with the overlay
// warning entry, drawn as ASCII from live System UI state. Shows the
// three situations a user can be in: benign overlay (alert fully shown),
// draw-and-destroy attack (nothing to see), attack under the enhanced
// defense (alert pinned visible).
#include <cstdio>
#include <string>

#include "core/overlay_attack.hpp"
#include "defense/notification_defense.hpp"
#include "device/registry.hpp"
#include "percept/outcomes.hpp"
#include "server/world.hpp"

using namespace animus;

namespace {

void render_drawer(server::World& world, int uid, const char* app_name) {
  const auto& sysui = world.system_ui();
  const int px = sysui.current_pixels(uid);
  const int height = world.profile().notification_height_px;
  std::string icons = "[";
  for (int i = 0; i < server::kStatusBarIconCapacity; ++i) {
    icons += i < sysui.status_bar_icon_count() ? "!" : ".";
  }
  icons += "]";
  std::printf("  +------------------------------------------------+\n");
  std::printf("  | 12:00  %s            status bar   (#/4 icons) |\n", icons.c_str());
  std::printf("  +------------------------------------------------+\n");
  if (px == 0) {
    std::printf("  |   (notification drawer: no entry visible)     |\n");
  } else {
    const int bar = px * 40 / height;
    std::printf("  | +--------------------------------------------+ |\n");
    std::printf("  | |%-44s| |\n",
                (std::string(static_cast<std::size_t>(bar), '#') + " " +
                 std::to_string(px) + "/" + std::to_string(height) + "px")
                    .c_str());
    const auto snapshot = sysui.snapshot(uid);
    if (snapshot.max_completeness >= 1.0 && snapshot.max_message_progress > 0) {
      std::printf("  | | %-42s | |\n",
                  (std::string(app_name) + " is displaying over other apps").c_str());
    }
    if (snapshot.icon_shown) {
      std::printf("  | | (i) tap to open Settings and revoke        | |\n");
    }
    std::printf("  | +--------------------------------------------+ |\n");
  }
  std::printf("  +------------------------------------------------+\n");
}

}  // namespace

int main() {
  const auto& dev = device::reference_device_android9();
  std::puts("=== Fig. 1: the built-in notification defense (rendered) ===\n");

  {
    std::puts("(a) benign overlay app, alert fully drawn:\n");
    server::WorldConfig wc;
    wc.profile = dev;
    wc.deterministic = true;
    wc.trace_enabled = false;
    server::World world{wc};
    world.server().grant_overlay_permission(server::kBenignUid);
    server::OverlaySpec spec;
    spec.bounds = {800, 200, 200, 200};
    world.server().add_view(server::kBenignUid, spec);
    world.run_until(sim::seconds(2));
    render_drawer(world, server::kBenignUid, "MusicBubble");
  }
  {
    std::puts("\n(b) draw-and-destroy overlay attack at D = 190 ms:\n");
    server::WorldConfig wc;
    wc.profile = dev;
    wc.deterministic = true;
    wc.trace_enabled = false;
    server::World world{wc};
    world.server().grant_overlay_permission(server::kMalwareUid);
    core::OverlayAttackConfig oc;
    oc.attacking_window = sim::ms(190);
    core::OverlayAttack attack{world, oc};
    attack.start();
    world.run_until(sim::seconds(2));
    render_drawer(world, server::kMalwareUid, "TotallyFine");
    attack.stop();
  }
  {
    std::puts("\n(c) the same attack under the enhanced notification defense:\n");
    server::WorldConfig wc;
    wc.profile = dev;
    wc.deterministic = true;
    wc.trace_enabled = false;
    server::World world{wc};
    world.server().grant_overlay_permission(server::kMalwareUid);
    defense::install_enhanced_notification_defense(world);
    core::OverlayAttackConfig oc;
    oc.attacking_window = sim::ms(190);
    core::OverlayAttack attack{world, oc};
    attack.start();
    world.run_until(sim::seconds(2));
    render_drawer(world, server::kMalwareUid, "TotallyFine");
    attack.stop();
  }
  std::puts("\nThe notification entry contains the view (container), the message and an");
  std::puts("icon, which is also pinned to the status bar when there is space (<= 4).");
  return 0;
}
