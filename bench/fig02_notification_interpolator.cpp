// Fig. 2 — Time vs. percentage of animation completeness for the
// notification alert slide-in (FastOutSlowInInterpolator over 360 ms).
//
// Anchors the paper calls out: < 50% revealed within the first 100 ms;
// the 10 ms first frame reveals ~0.17%, i.e. 0 whole pixels of a 72 px
// notification view.
#include <cstdio>
#include <vector>

#include "metrics/histogram.hpp"
#include "metrics/table.hpp"
#include "ui/animation.hpp"

int main() {
  using namespace animus;
  const ui::Animation anim = ui::notification_slide_in();

  std::puts("=== Fig. 2: FastOutSlowIn completeness vs time (360 ms) ===\n");
  std::vector<double> xs, ys;
  metrics::Table table({"t (ms)", "completeness", "presented px (72px view)"});
  for (int t = 0; t <= 360; t += 10) {
    const double y = anim.completeness_at(sim::ms(t));
    xs.push_back(t);
    ys.push_back(y * 100.0);
    if (t % 30 == 0) {
      table.add_row({metrics::fmt("%d", t), metrics::percent(y),
                     metrics::fmt("%d", anim.presented_pixels_at(sim::ms(t), 72))});
    }
  }
  std::fputs(metrics::ascii_curve(xs, ys).c_str(), stdout);
  std::puts("");
  std::fputs(table.to_string().c_str(), stdout);

  std::puts("\nPaper anchors:");
  std::printf("  completeness at 100 ms : %s (paper: < 50%%)\n",
              metrics::percent(anim.completeness_at(sim::ms(100))).c_str());
  std::printf("  completeness at  10 ms : %.3f%% (paper: ~0.17%%)\n",
              anim.completeness_at(sim::ms(10)) * 100.0);
  std::printf("  first-frame pixels (72 px view): %d (paper: 0.1224 px -> 0)\n",
              anim.presented_pixels_at(sim::ms(10), 72));
  std::printf("  time to reveal %d px (Ta)      : %.0f ms\n", ui::kNakedEyeMinPixels,
              sim::to_ms(anim.time_to_reveal(ui::kNakedEyeMinPixels, 72)));
  return 0;
}
