// Fig. 8 — capture rate vs D split by Android version family. The paper
// finds Android 10 lowest (~90% even at D = 200 ms) because its reduced
// Trm enlarges the mistouch gap Tmis = Tas + Tam - Trm.
#include <cstdio>
#include <map>
#include <vector>

#include "core/attack_analysis.hpp"
#include "core/report.hpp"
#include "device/registry.hpp"
#include "input/typist.hpp"
#include "metrics/stats.hpp"
#include "metrics/table.hpp"

int main() {
  using namespace animus;
  const auto panel = input::participant_panel();
  const auto devices = device::all_devices();

  std::puts("=== Fig. 8: capture rate vs D by Android version family ===\n");
  const std::vector<std::string> families = {"Android 8.x", "Android 9.x", "Android 10.0",
                                             "Android 11.0"};
  metrics::Table table({"D (ms)", families[0].c_str(), families[1].c_str(),
                        families[2].c_str(), families[3].c_str()});
  std::map<std::string, double> at200;
  for (int d : {50, 75, 100, 125, 150, 175, 200}) {
    std::map<std::string, metrics::RunningStats> by_family;
    for (std::size_t p = 0; p < devices.size(); ++p) {
      // Average several participants per device to steady the estimate.
      for (std::size_t rep = 0; rep < 4; ++rep) {
        core::CaptureTrialConfig c;
        c.profile = devices[p];
        c.typist = panel[(p + rep * 7) % panel.size()];
        c.attacking_window = sim::ms(d);
        c.touches = 100;
        c.seed = 5000 + p * 31 + rep;
        by_family[std::string(device::version_family(devices[p].version))].add(
            core::run_capture_trial(c).rate * 100.0);
      }
    }
    std::vector<std::string> row{metrics::fmt("%d", d)};
    for (const auto& fam : families) {
      row.push_back(metrics::fmt("%.1f", by_family[fam].mean()));
      if (d == 200) at200[fam] = by_family[fam].mean();
    }
    table.add_row(std::move(row));
  }
  std::fputs(table.to_string().c_str(), stdout);

  std::puts("\nAnalytic cross-check (per-touch capture, gesture registration):");
  for (const auto& fam : families) {
    for (const auto& dev : devices) {
      if (std::string(device::version_family(dev.version)) != fam) continue;
      std::printf("  %-13s E[Tmis] = %.1f ms, predicted capture at D=200: %s\n", fam.c_str(),
                  dev.expected_tmis_ms(),
                  metrics::percent(core::predicted_capture_rate(dev, 200.0, 14.0)).c_str());
      break;
    }
  }
  std::printf("\nShape check: Android 10 stays lowest (%.1f%% at D=200 vs %.1f%% on 9.x);\n",
              at200["Android 10.0"], at200["Android 9.x"]);
  std::puts("the paper attributes this to the reduced Trm on Android 10 (Section VI-B).");
  return 0;
}
