// Fig. 8 — capture rate vs D split by Android version family. The paper
// finds Android 10 lowest (~90% even at D = 200 ms) because its reduced
// Trm enlarges the mistouch gap Tmis = Tas + Tam - Trm.
//
// The (D, device, repetition) grid fans out through runner::sweep and
// is grouped by version family afterwards, in submission order.
#include <cstdio>
#include <map>
#include <vector>

#include "core/attack_analysis.hpp"
#include "core/report.hpp"
#include "core/trial_session.hpp"
#include "device/registry.hpp"
#include "input/typist.hpp"
#include "metrics/stats.hpp"
#include "metrics/table.hpp"
#include "runner/bench_cli.hpp"
#include "runner/runner.hpp"

int main(int argc, char** argv) {
  using namespace animus;
  const auto args = runner::BenchArgs::parse(argc, argv);
  const auto panel = input::participant_panel();
  const auto devices = device::all_devices();
  const std::vector<std::string> families = {"Android 8.x", "Android 9.x", "Android 10.0",
                                             "Android 11.0"};
  const std::vector<int> windows = {50, 75, 100, 125, 150, 175, 200};
  constexpr std::size_t kReps = 4;  // participants averaged per device

  struct Trial {
    int d;
    std::size_t device;
    std::size_t rep;
  };
  std::vector<Trial> trials;
  for (int d : windows)
    for (std::size_t p = 0; p < devices.size(); ++p)
      for (std::size_t rep = 0; rep < kReps; ++rep) trials.push_back({d, p, rep});

  // Checkpoint-aware sweep: honors --checkpoint-out / --resume-from.
  const auto sw = runner::run_campaign(
      "fig08", trials,
      [&](const Trial& t, const runner::TrialContext& ctx) {
        core::CaptureTrialConfig c;
        c.profile = devices[t.device];
        c.typist = panel[(t.device + t.rep * 7) % panel.size()];
        c.attacking_window = sim::ms(t.d);
        c.touches = 100;
        c.seed = ctx.seed;
        return core::TrialSession::local().run(c).rate * 100.0;
      },
      args);

  runner::note(args, "=== Fig. 8: capture rate vs D by Android version family ===\n");
  metrics::Table table({"D (ms)", families[0].c_str(), families[1].c_str(),
                        families[2].c_str(), families[3].c_str()});
  std::map<std::string, double> at200;
  std::size_t i = 0;
  for (int d : windows) {
    std::map<std::string, metrics::RunningStats> by_family;
    for (std::size_t p = 0; p < devices.size(); ++p)
      for (std::size_t rep = 0; rep < kReps; ++rep, ++i)
        by_family[std::string(device::version_family(devices[p].version))].add(sw.results[i]);
    std::vector<std::string> row{metrics::fmt("%d", d)};
    for (const auto& fam : families) {
      row.push_back(metrics::fmt("%.1f", by_family[fam].mean()));
      if (d == 200) at200[fam] = by_family[fam].mean();
    }
    table.add_row(std::move(row));
  }
  runner::emit(table, args);

  if (!args.csv) {
    std::puts("\nAnalytic cross-check (per-touch capture, gesture registration):");
    for (const auto& fam : families) {
      for (const auto& dev : devices) {
        if (std::string(device::version_family(dev.version)) != fam) continue;
        std::printf("  %-13s E[Tmis] = %.1f ms, predicted capture at D=200: %s\n", fam.c_str(),
                    dev.expected_tmis_ms(),
                    metrics::percent(core::predicted_capture_rate(dev, 200.0, 14.0)).c_str());
        break;
      }
    }
    std::printf("\nShape check: Android 10 stays lowest (%.1f%% at D=200 vs %.1f%% on 9.x);\n",
                at200["Android 10.0"], at200["Android 9.x"]);
    std::puts("the paper attributes this to the reduced Trm on Android 10 (Section VI-B).");
  }
  runner::finish(args);
  return sw.ok() ? 0 : 1;
}
