// Fig. 8 — capture rate vs D split by Android version family. The paper
// finds Android 10 lowest (~90% even at D = 200 ms) because its reduced
// Trm enlarges the mistouch gap Tmis = Tas + Tam - Trm.
//
// The sweep + table logic lives in service/benches.cpp, shared with the
// campaign daemon so a daemon-submitted fig08 produces a CSV
// byte-identical to this binary's --csv output.
#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/attack_analysis.hpp"
#include "device/registry.hpp"
#include "metrics/stats.hpp"
#include "runner/bench_cli.hpp"
#include "service/benches.hpp"

int main(int argc, char** argv) {
  using namespace animus;
  const auto args = runner::BenchArgs::parse(argc, argv);
  const std::vector<std::string> families = {"Android 8.x", "Android 9.x", "Android 10.0",
                                             "Android 11.0"};
  const auto out = service::find_campaign_bench("fig08")->run(args);

  runner::note(args, "=== Fig. 8: capture rate vs D by Android version family ===\n");
  runner::emit(out.table, args);

  if (!args.csv) {
    const auto devices = device::all_devices();
    std::puts("\nAnalytic cross-check (per-touch capture, gesture registration):");
    for (const auto& fam : families) {
      for (const auto& dev : devices) {
        if (std::string(device::version_family(dev.version)) != fam) continue;
        std::printf("  %-13s E[Tmis] = %.1f ms, predicted capture at D=200: %s\n", fam.c_str(),
                    dev.expected_tmis_ms(),
                    metrics::percent(core::predicted_capture_rate(dev, 200.0, 14.0)).c_str());
        break;
      }
    }
    // The D=200 row is the table's last; families start at column 1.
    const std::size_t last = out.table.rows() - 1;
    const double at200_v9 = std::strtod(out.table.cell(last, 2).c_str(), nullptr);
    const double at200_v10 = std::strtod(out.table.cell(last, 3).c_str(), nullptr);
    std::printf("\nShape check: Android 10 stays lowest (%.1f%% at D=200 vs %.1f%% on 9.x);\n",
                at200_v10, at200_v9);
    std::puts("the paper attributes this to the reduced Trm on Android 10 (Section VI-B).");
  }
  runner::finish(args);
  return out.ok ? 0 : 1;
}
