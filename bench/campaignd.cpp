// campaignd — the long-running campaign service daemon.
//
// Accepts campaign submissions over HTTP, schedules them sequentially
// over the ExecutionBackend fleet, streams live telemetry over SSE and
// keeps finished results queryable in an append-only index:
//
//   campaignd --port 8791 --index results/index.jsonl
//
//   curl -s localhost:8791/campaigns                    # list runs
//   curl -s localhost:8791/campaigns/c0001/metrics      # live snapshot
//   curl -sN localhost:8791/events                      # SSE stream
//   curl -s -XPOST -d '{"bench":"fig07","seed":42}' \
//        localhost:8791/campaigns                       # submit
//   curl -s -XPOST localhost:8791/shutdown              # clean exit
//
// A shutdown request lets the running campaign finish (its result is
// appended to the index) and abandons the rest of the queue — queued
// work is cheap to resubmit, finished work is not.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

#include "service/daemon.hpp"
#include "service/http.hpp"

int main(int argc, char** argv) {
  using namespace animus;
  int port = 8791;
  std::string index_path = "campaign-index.jsonl";
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--port" && i + 1 < argc) {
      port = std::atoi(argv[++i]);
    } else if (arg == "--index" && i + 1 < argc) {
      index_path = argv[++i];
    } else if (arg == "--help" || arg == "-h") {
      std::printf("usage: %s [--port N] [--index FILE]\n", argv[0]);
      return 0;
    } else {
      std::fprintf(stderr, "%s: unknown argument '%s'\n", argv[0], argv[i]);
      return 2;
    }
  }

  service::CampaignDaemon::Options options;
  options.index_path = index_path;
  service::CampaignDaemon daemon(options);
  daemon.start();

  service::HttpServer server(
      [&daemon](const service::HttpRequest& req) { return daemon.handle(req); },
      &daemon.hub());
  if (!server.start(port)) {
    std::fprintf(stderr, "%s: cannot bind 127.0.0.1:%d\n", argv[0], port);
    return 2;
  }
  std::printf("campaignd listening on http://127.0.0.1:%d (index: %s)\n", server.port(),
              index_path.c_str());
  std::fflush(stdout);

  while (!daemon.shutdown_requested()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  std::fprintf(stderr, "[campaignd] shutdown requested; finishing running campaign\n");
  server.stop();
  daemon.stop();
  std::printf("campaignd: clean shutdown\n");
  return 0;
}
