// Machine-readable kernel performance report.
//
// Runs the event-engine micro workloads (bulk schedule+run, the overlay
// attack's cancel-heavy draw-destroy shape, periodic self-rescheduling)
// plus a reduced Fig. 7-style capture-rate sweep, and writes one JSON
// document — BENCH_kernel.json by default — so the perf trajectory of
// the simulation kernel is tracked from PR to PR. CI's perf-smoke job
// uploads the file as an artifact; docs/performance.md describes the
// schema and how to read it.
//
//   perf_report [--out FILE] [--jobs N] [--quick]
//
// Unlike the google-benchmark binaries this is self-timing (median of
// repeats over fixed-size workloads), so the output is a small, stable
// schema rather than console text, and it runs in seconds.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <functional>
#include <string>
#include <vector>

#include "core/report.hpp"
#include "core/trial_session.hpp"
#include "device/registry.hpp"
#include "input/typist.hpp"
#include "obs/metrics.hpp"
#include "obs/profile.hpp"
#include "obs/stream.hpp"
#include "runner/backend.hpp"
#include "runner/field_codec.hpp"
#include "runner/runner.hpp"
#include "sim/event_loop.hpp"

namespace {

using namespace animus;
using Clock = std::chrono::steady_clock;

double elapsed_ns(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double, std::nano>(b - a).count();
}

struct Sample {
  std::string name;
  std::string note;
  std::size_t events = 0;   // events (or trials) per repeat
  int repeats = 0;
  double ns_per_event = 0;  // median over repeats
  double ops_per_sec = 0;
};

/// Time `body` (a workload processing `events` events) `repeats` times
/// and keep the median — robust against scheduler noise without needing
/// google-benchmark's adaptive iteration machinery.
template <typename Fn>
Sample timed(const char* name, const char* note, std::size_t events, int repeats, Fn&& body) {
  std::vector<double> ns(static_cast<std::size_t>(repeats));
  body();  // warm-up: page in the slab / heap pools
  for (auto& slot : ns) {
    const auto t0 = Clock::now();
    body();
    slot = elapsed_ns(t0, Clock::now());
  }
  std::sort(ns.begin(), ns.end());
  const double median = ns[ns.size() / 2];
  Sample s;
  s.name = name;
  s.note = note;
  s.events = events;
  s.repeats = repeats;
  s.ns_per_event = median / static_cast<double>(events);
  s.ops_per_sec = 1e9 * static_cast<double>(events) / median;
  return s;
}

/// Bulk schedule of N events, then drain: the baseline kernel cost.
Sample bench_schedule_run(int n, int repeats) {
  return timed("schedule_run", "bulk schedule + run_all", static_cast<std::size_t>(n), repeats,
               [n] {
                 sim::EventLoop loop;
                 int sink = 0;
                 for (int i = 0; i < n; ++i) {
                   loop.schedule_at(sim::us(i * 7 % 997), [&sink] { ++sink; });
                 }
                 loop.run_all();
               });
}

/// The overlay draw-destroy shape: cancel the pending alert event,
/// schedule its replacement, schedule the next cycle (§III hot path).
Sample bench_schedule_cancel(int n, int repeats) {
  return timed("schedule_cancel", "draw-destroy: cancel + 2 schedules per cycle",
               static_cast<std::size_t>(n), repeats, [n] {
                 sim::EventLoop loop;
                 int sink = 0;
                 sim::EventLoop::EventId pending{};
                 for (int i = 0; i < n; ++i) {
                   loop.cancel(pending);
                   pending = loop.schedule_at(sim::us(i * 11 + 400), [&sink] { ++sink; });
                   loop.schedule_at(sim::us(i * 11), [&sink] { ++sink; });
                 }
                 loop.run_all();
               });
}

/// Self-rearming periodic timer: slot-reuse steady state.
Sample bench_periodic(int n, int repeats) {
  return timed("periodic_reschedule", "timer re-arms itself from its callback",
               static_cast<std::size_t>(n), repeats, [n] {
                 sim::EventLoop loop;
                 int remaining = n;
                 std::function<void()> tick = [&] {
                   if (--remaining > 0) loop.schedule_after(sim::ms(2), tick);
                 };
                 loop.schedule_after(sim::ms(2), tick);
                 loop.run_all();
               });
}

/// Per-trial dispatch overhead of an execution backend: a body that does
/// almost nothing (encode one double) pushed through run_encoded, so the
/// time measured is the backend's own cost — steal-queue handoff for
/// threads, fork + pipe round-trips for process shards. Catches backend
/// regressions in the same perf-smoke trend as the kernel workloads.
Sample bench_sweep_dispatch(const char* name, const char* backend_name, int parallelism,
                            int batch, int trials, int repeats) {
  runner::RunOptions opts;
  opts.jobs = parallelism;
  std::string error;
  const auto backend = runner::make_backend(backend_name, opts, parallelism, batch, &error);
  if (!backend) {
    std::fprintf(stderr, "perf_report: %s\n", error.c_str());
    std::exit(1);
  }
  std::vector<std::size_t> indices(static_cast<std::size_t>(trials));
  for (std::size_t i = 0; i < indices.size(); ++i) indices[i] = i;
  const runner::EncodedBody body = [](const runner::TrialContext& ctx) {
    return runner::TrialCodec<double>::encode(static_cast<double>(ctx.index));
  };
  Sample s = timed(name, "", static_cast<std::size_t>(trials), repeats, [&] {
    const auto sweep = backend->run_encoded(indices, indices.size(), body, nullptr);
    if (sweep.encoded.size() != indices.size()) std::exit(1);
  });
  s.note = std::string("near-empty trials through the ") + backend_name +
           " backend: pure dispatch overhead";
  if (batch > 1) s.note += " (" + std::to_string(batch) + "-trial frames)";
  return s;
}

/// Outcome-probe throughput on each trial tier, single thread: the
/// session-reused simulation (one World recycled across epochs) and the
/// analytic replay. Reported as trials/sec so the tier speedup is read
/// straight off the report.
Sample bench_trials_per_sec(const char* name, const char* note, core::Tier tier, int trials,
                            int repeats) {
  core::TrialSession session;
  const auto& dev = device::reference_device_android9();
  Sample s = timed(name, note, static_cast<std::size_t>(trials), repeats, [&] {
    for (int i = 0; i < trials; ++i) {
      core::OutcomeProbeConfig c;
      c.profile = dev;
      c.attacking_window = sim::ms(50 + (i % 40) * 5);
      c.duration = sim::seconds(3);
      c.tier = tier;
      if (session.run(c).cycles <= 0) std::exit(1);
    }
  });
  return s;
}

/// Streaming-telemetry sample cost at scale: snapshot + encode one
/// metrics record for a registry of `series` counters, of which ~one
/// moves per tick (the realistic long-campaign shape — almost every
/// series is quiet between frames). The delta path is what a fast
/// --stream-interval pays per tick; the note carries the measured ratio
/// against the full stream_fields rendering the pre-delta format paid.
Sample bench_stream_delta(int series, int frames, int repeats) {
  obs::MetricsRegistry reg;
  std::vector<obs::Counter*> counters;
  counters.reserve(static_cast<std::size_t>(series));
  for (int i = 0; i < series; ++i) {
    counters.push_back(&reg.counter("animus_perf_stream", {{"s", std::to_string(i)}}));
    counters.back()->add(1.0);
  }
  const auto events = static_cast<std::size_t>(series) * static_cast<std::size_t>(frames);
  std::size_t sink = 0;
  const auto churn = [&](int f) {
    counters[static_cast<std::size_t>(f * 131) % counters.size()]->add(1.0);
  };
  const Sample full = timed("stream_full", "", events, repeats, [&] {
    for (int f = 0; f < frames; ++f) {
      churn(f);
      sink += obs::stream_fields(reg.snapshot()).size();
    }
  });
  Sample s = timed("stream_delta_vs_full", "", events, repeats, [&] {
    obs::DeltaEncoder enc;  // fresh per repeat: frame 0 keyframe + deltas
    for (int f = 0; f < frames; ++f) {
      churn(f);
      sink += enc.encode(reg.snapshot()).size();
    }
  });
  if (sink == 0) s.events = 0;  // keep the encoders honest
  char note[160];
  std::snprintf(note, sizeof(note),
                "delta-encoded metrics sample, %d series, ~1 changed/tick; "
                "full-snapshot path costs %.2fx",
                series, full.ns_per_event / s.ns_per_event);
  s.note = note;
  return s;
}

/// Reduced Fig. 7 sweep: 30 participants x 3 windows, full Worlds, via
/// runner::sweep — end-to-end wall clock including the parallel runner.
/// Measured twice per repeat, back to back: once plain and once with the
/// sweep profiler collecting every span. Alternating the two workloads
/// keeps the profiled/plain ratio honest on noisy machines (frequency
/// drift hits adjacent passes equally, where sequential phases would eat
/// it all in one row); that ratio is the instrumentation cost of
/// `--profile-out`, and CI's perf-smoke job asserts it stays under 5%.
/// A profiled pass that observed no spans zeroes `events` so the guard
/// cannot pass vacuously.
std::pair<Sample, Sample> bench_fig07_sweep(bool quick) {
  const auto panel = input::participant_panel();
  const auto devices = device::all_devices();
  const std::vector<int> windows = quick ? std::vector<int>{150} : std::vector<int>{50, 125, 200};
  struct Trial {
    int d;
    std::size_t participant;
  };
  std::vector<Trial> trials;
  for (int d : windows)
    for (std::size_t p = 0; p < panel.size(); ++p) trials.push_back({d, p});

  bool ok = true;
  const auto run_once = [&]() -> double {
    runner::RunOptions opts;
    // One worker, always: the sweep_dispatch rows cover the parallel
    // runner, and a single-threaded pair keeps the overhead ratio free of
    // scheduler placement noise.
    opts.jobs = 1;
    const auto t0 = Clock::now();
    const auto sw = runner::sweep(
        trials,
        [&](const Trial& t, const runner::TrialContext& ctx) {
          core::CaptureTrialConfig c;
          c.profile = devices[t.participant % devices.size()];
          c.typist = panel[t.participant];
          c.attacking_window = sim::ms(t.d);
          c.touches = 100;
          c.seed = ctx.seed;
          return core::TrialSession::local().run(c).rate * 100.0;
        },
        opts);
    const double ns = elapsed_ns(t0, Clock::now());
    // Guard against the sweep being optimized into nonsense.
    if (sw.results.size() != trials.size()) ok = false;
    return ns;
  };

  const int reps = quick ? 5 : 25;
  std::vector<double> plain_ns;
  std::vector<double> profiled_ns;
  bool saw_spans = true;
  const auto run_plain = [&] { plain_ns.push_back(run_once()); };
  const auto run_profiled = [&] {
    obs::span_profiler().enable();
    obs::span_profiler().reset();
    profiled_ns.push_back(run_once());
    if (obs::span_profiler().snapshot().span_count() == 0) saw_spans = false;
    obs::span_profiler().reset();
    obs::span_profiler().disable();
  };
  run_once();  // warm-up
  for (int r = 0; r < reps; ++r) {
    // ABBA: whichever workload runs second in a pair inherits the first
    // one's warmed state, so alternate the order to cancel the bias.
    if (r % 2 == 0) {
      run_plain();
      run_profiled();
    } else {
      run_profiled();
      run_plain();
    }
  }
  // A single 50 ms sweep can eat a scheduler preemption whole, so medians
  // of a handful of repeats wobble by several percent on shared machines.
  // Totals over the whole interleaved sequence are the robust estimator:
  // slow machine phases cover plain and profiled sweeps alike (ABBA order),
  // so they cancel out of the ratio instead of landing on one row.
  double plain_total = 0;
  double profiled_total = 0;
  for (double v : plain_ns) plain_total += v;
  for (double v : profiled_ns) profiled_total += v;

  const auto to_sample = [&](const char* name, const char* note, double total_ns) {
    Sample s;
    s.name = name;
    s.note = note;
    s.events = trials.size();
    s.repeats = reps;
    const double per_rep = total_ns / static_cast<double>(reps);
    s.ns_per_event = per_rep / static_cast<double>(trials.size());
    s.ops_per_sec = 1e9 * static_cast<double>(trials.size()) / per_rep;
    if (!ok) s.events = 0;
    return s;
  };
  Sample plain = to_sample("fig07_sweep",
                           "capture-rate sweep wall-clock (full Worlds through runner::sweep, jobs=1)",
                           plain_total);
  Sample profiled = to_sample(
      "fig07_sweep_profiled",
      "same sweep with the span profiler collecting every span (overhead guard)",
      profiled_total);
  if (!saw_spans) profiled.events = 0;
  return {std::move(plain), std::move(profiled)};
}

void write_json(const char* path, const std::vector<Sample>& samples, int jobs) {
  std::FILE* f = std::strcmp(path, "-") == 0 ? stdout : std::fopen(path, "w");
  if (!f) {
    std::fprintf(stderr, "perf_report: cannot open %s\n", path);
    std::exit(1);
  }
  std::fprintf(f, "{\n  \"schema\": 5,\n  \"report\": \"animus-kernel\",\n");
  std::fprintf(f, "  \"engine\": \"%s\",\n", sim::EventLoop::engine_name());
  std::fprintf(f, "  \"jobs\": %d,\n  \"benchmarks\": [\n", jobs);
  for (std::size_t i = 0; i < samples.size(); ++i) {
    const Sample& s = samples[i];
    std::fprintf(f,
                 "    {\"name\": \"%s\", \"note\": \"%s\", \"events\": %zu, "
                 "\"repeats\": %d, \"ns_per_event\": %.2f, \"ops_per_sec\": %.0f}%s\n",
                 s.name.c_str(), s.note.c_str(), s.events, s.repeats, s.ns_per_event,
                 s.ops_per_sec, i + 1 < samples.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  if (f != stdout) std::fclose(f);
}

}  // namespace

int main(int argc, char** argv) {
  const char* out = "BENCH_kernel.json";
  int jobs = 0;
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--out" && i + 1 < argc) {
      out = argv[++i];
    } else if (arg.rfind("--out=", 0) == 0) {
      out = argv[i] + 6;
    } else if (arg == "--jobs" && i + 1 < argc) {
      jobs = std::atoi(argv[++i]);
    } else if (arg.rfind("--jobs=", 0) == 0) {
      jobs = std::atoi(argv[i] + 7);
    } else if (arg == "--quick") {
      quick = true;
    } else {
      std::fprintf(stderr, "usage: perf_report [--out FILE|-] [--jobs N] [--quick]\n");
      return arg == "--help" ? 0 : 2;
    }
  }

  const int n = quick ? 10'000 : 100'000;
  const int repeats = quick ? 5 : 9;
  std::vector<Sample> samples;
  samples.push_back(bench_schedule_run(n, repeats));
  samples.push_back(bench_schedule_cancel(n, repeats));
  samples.push_back(bench_periodic(n, repeats));
  const int dispatch_trials = quick ? 256 : 2048;
  samples.push_back(bench_sweep_dispatch("sweep_dispatch_threads", "threads", 2, 1,
                                         dispatch_trials, repeats));
#if !defined(_WIN32)
  // batch=1 is the pre-batching one-trial-in-flight protocol, retained
  // so the round-trip tax the batched row removes stays measurable.
  samples.push_back(bench_sweep_dispatch("sweep_dispatch_process", "process", 2, 1,
                                         dispatch_trials, repeats));
  samples.push_back(bench_sweep_dispatch("sweep_dispatch_process_batched", "process", 2, 64,
                                         dispatch_trials, repeats));
#endif
  const int tier_trials = quick ? 64 : 256;
  samples.push_back(bench_trials_per_sec("trials_per_sec_sim",
                                         "outcome probes, session-reused World, sim tier",
                                         core::Tier::kSim, tier_trials, repeats));
  samples.push_back(bench_trials_per_sec("trials_per_sec_analytic",
                                         "outcome probes, closed-form analytic tier",
                                         core::Tier::kAnalytic, tier_trials, repeats));
  samples.push_back(bench_stream_delta(10'000, quick ? 8 : 16, repeats));
  auto [fig07, fig07_profiled] = bench_fig07_sweep(quick);
  samples.push_back(std::move(fig07));
  samples.push_back(std::move(fig07_profiled));

  for (const Sample& s : samples) {
    std::fprintf(stderr, "%-22s %10.2f ns/event  %12.0f ops/s  (%zu events x %d)\n",
                 s.name.c_str(), s.ns_per_event, s.ops_per_sec, s.events, s.repeats);
  }
  write_json(out, samples, jobs);
  if (std::strcmp(out, "-") != 0) std::fprintf(stderr, "perf_report: wrote %s\n", out);
  return 0;
}
