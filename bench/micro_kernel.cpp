// Microbenchmarks of the simulation kernel and hot substrate paths
// (google-benchmark). These bound the cost of the experiment harness
// itself: a full 30-participant capture sweep must stay interactive.
#include <benchmark/benchmark.h>

#include "analysis/corpus.hpp"
#include "analysis/manifest.hpp"
#include "analysis/scanner.hpp"
#include "core/report.hpp"
#include "device/registry.hpp"
#include "input/typist.hpp"
#include "sim/event_loop.hpp"
#include "sim/rng.hpp"
#include "ui/interpolator.hpp"

namespace {

using namespace animus;

void BM_EventLoopScheduleRun(benchmark::State& state) {
  for (auto _ : state) {
    sim::EventLoop loop;
    int sink = 0;
    for (int i = 0; i < 1000; ++i) {
      loop.schedule_at(sim::us(i * 7 % 997), [&sink] { ++sink; });
    }
    loop.run_all();
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EventLoopScheduleRun);

void BM_RngNormal(benchmark::State& state) {
  sim::Rng rng{42};
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.normal(0.0, 1.0));
  }
}
BENCHMARK(BM_RngNormal);

void BM_FastOutSlowInEval(benchmark::State& state) {
  const auto& interp = ui::fast_out_slow_in();
  double x = 0.0;
  for (auto _ : state) {
    x += 0.001;
    if (x >= 1.0) x = 0.0;
    benchmark::DoNotOptimize(interp.value(x));
  }
}
BENCHMARK(BM_FastOutSlowInEval);

void BM_ManifestRoundTrip(benchmark::State& state) {
  const analysis::Corpus corpus{2016};
  std::size_t i = 0;
  for (auto _ : state) {
    const auto apk = corpus.app(i++ % 10000);
    const auto parsed = analysis::parse_manifest_xml(analysis::write_manifest_xml(apk));
    benchmark::DoNotOptimize(parsed.ok());
  }
}
BENCHMARK(BM_ManifestRoundTrip);

void BM_FullApkScan(benchmark::State& state) {
  const analysis::Corpus corpus{2016};
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(analysis::scan_apk(corpus.app(i++ % 10000)));
  }
}
BENCHMARK(BM_FullApkScan);

void BM_CaptureTrial(benchmark::State& state) {
  const auto panel = input::participant_panel();
  std::size_t seed = 0;
  for (auto _ : state) {
    core::CaptureTrialConfig c;
    c.profile = device::reference_device_android9();
    c.typist = panel[seed % panel.size()];
    c.attacking_window = sim::ms(150);
    c.touches = 100;
    c.seed = seed++;
    benchmark::DoNotOptimize(core::run_capture_trial(c).rate);
  }
  state.SetLabel("one participant, 100 touches");
}
BENCHMARK(BM_CaptureTrial);

void BM_PasswordTrial(benchmark::State& state) {
  const auto panel = input::participant_panel();
  std::size_t seed = 0;
  for (auto _ : state) {
    core::PasswordTrialConfig c;
    c.profile = device::reference_device_android9();
    c.typist = panel[seed % panel.size()];
    c.password = "tk&%48GH";
    c.seed = seed++;
    benchmark::DoNotOptimize(core::run_password_trial(c).success);
  }
  state.SetLabel("full login + theft simulation");
}
BENCHMARK(BM_PasswordTrial);

}  // namespace

BENCHMARK_MAIN();
