// Microbenchmarks of the simulation kernel and hot substrate paths
// (google-benchmark). These bound the cost of the experiment harness
// itself: a full 30-participant capture sweep must stay interactive.
#include <benchmark/benchmark.h>

#include <functional>

#include "analysis/corpus.hpp"
#include "analysis/manifest.hpp"
#include "analysis/scanner.hpp"
#include "core/report.hpp"
#include "core/trial_session.hpp"
#include "device/registry.hpp"
#include "input/typist.hpp"
#include "sim/event_loop.hpp"
#include "sim/rng.hpp"
#include "ui/interpolator.hpp"

namespace {

using namespace animus;

void BM_EventLoopScheduleRun(benchmark::State& state) {
  for (auto _ : state) {
    sim::EventLoop loop;
    int sink = 0;
    for (int i = 0; i < 1000; ++i) {
      loop.schedule_at(sim::us(i * 7 % 997), [&sink] { ++sink; });
    }
    loop.run_all();
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EventLoopScheduleRun);

// The overlay attack's hot shape (§III): every draw-destroy iteration
// cancels the pending alert-animation event and schedules the next
// cycle, so cancel — not bulk schedule+run — dominates the kernel time
// of Fig. 7/8 sweeps and Table II's binary searches.
void BM_EventLoopCancelHeavy(benchmark::State& state) {
  for (auto _ : state) {
    sim::EventLoop loop;
    int sink = 0;
    sim::EventLoop::EventId pending{};
    for (int i = 0; i < 1000; ++i) {
      // Cancel the previous "alert" event before it fires, then schedule
      // the replacement — the steady-state of a draw-destroy loop.
      loop.cancel(pending);
      pending = loop.schedule_at(sim::us(i * 11 + 400), [&sink] { ++sink; });
      loop.schedule_at(sim::us(i * 11), [&sink] { ++sink; });
    }
    loop.run_all();
    benchmark::DoNotOptimize(sink);
  }
  // Each iteration is one cancel + two schedules.
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EventLoopCancelHeavy);

// Periodic timer that re-arms itself from inside its own callback — the
// shape of toast re-enqueue loops and defense watchdogs. Exercises slot
// reuse: a slab engine should reach steady state with zero allocation.
void BM_EventLoopPeriodicReschedule(benchmark::State& state) {
  for (auto _ : state) {
    sim::EventLoop loop;
    int remaining = 1000;
    std::function<void()> tick = [&] {
      if (--remaining > 0) loop.schedule_after(sim::ms(2), tick);
    };
    loop.schedule_after(sim::ms(2), tick);
    loop.run_all();
    benchmark::DoNotOptimize(remaining);
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EventLoopPeriodicReschedule);

void BM_RngNormal(benchmark::State& state) {
  sim::Rng rng{42};
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.normal(0.0, 1.0));
  }
}
BENCHMARK(BM_RngNormal);

void BM_FastOutSlowInEval(benchmark::State& state) {
  const auto& interp = ui::fast_out_slow_in();
  double x = 0.0;
  for (auto _ : state) {
    x += 0.001;
    if (x >= 1.0) x = 0.0;
    benchmark::DoNotOptimize(interp.value(x));
  }
}
BENCHMARK(BM_FastOutSlowInEval);

void BM_ManifestRoundTrip(benchmark::State& state) {
  const analysis::Corpus corpus{2016};
  std::size_t i = 0;
  for (auto _ : state) {
    const auto apk = corpus.app(i++ % 10000);
    const auto parsed = analysis::parse_manifest_xml(analysis::write_manifest_xml(apk));
    benchmark::DoNotOptimize(parsed.ok());
  }
}
BENCHMARK(BM_ManifestRoundTrip);

void BM_FullApkScan(benchmark::State& state) {
  const analysis::Corpus corpus{2016};
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(analysis::scan_apk(corpus.app(i++ % 10000)));
  }
}
BENCHMARK(BM_FullApkScan);

void BM_CaptureTrial(benchmark::State& state) {
  const auto panel = input::participant_panel();
  std::size_t seed = 0;
  for (auto _ : state) {
    core::CaptureTrialConfig c;
    c.profile = device::reference_device_android9();
    c.typist = panel[seed % panel.size()];
    c.attacking_window = sim::ms(150);
    c.touches = 100;
    c.seed = seed++;
    benchmark::DoNotOptimize(core::TrialSession::local().run(c).rate);
  }
  state.SetLabel("one participant, 100 touches");
}
BENCHMARK(BM_CaptureTrial);

void BM_PasswordTrial(benchmark::State& state) {
  const auto panel = input::participant_panel();
  std::size_t seed = 0;
  for (auto _ : state) {
    core::PasswordTrialConfig c;
    c.profile = device::reference_device_android9();
    c.typist = panel[seed % panel.size()];
    c.password = "tk&%48GH";
    c.seed = seed++;
    benchmark::DoNotOptimize(core::TrialSession::local().run(c).success);
  }
  state.SetLabel("full login + theft simulation");
}
BENCHMARK(BM_PasswordTrial);

}  // namespace

BENCHMARK_MAIN();
