// Fig. 3 and Fig. 5 — the entity-interaction workflows of the two
// draw-and-destroy attacks, regenerated as event timelines from the
// simulation trace (malicious app <-> System Server <-> System UI).
#include <cstdio>

#include "core/overlay_attack.hpp"
#include "core/toast_attack.hpp"
#include "device/registry.hpp"
#include "server/world.hpp"

using namespace animus;

namespace {

void print_trace(const sim::TraceRecorder& trace, sim::SimTime from, sim::SimTime to) {
  for (const auto& rec : trace.records()) {
    if (rec.time < from || rec.time > to) continue;
    std::printf("  %9.2f ms  %-13s %s\n", sim::to_ms(rec.time),
                std::string(sim::to_string(rec.category)).c_str(), rec.message.c_str());
  }
}

}  // namespace

int main() {
  const auto& dev = device::reference_device_android9();

  std::puts("=== Fig. 3: draw-and-destroy overlay attack, first three cycles ===");
  std::printf("(device %s, D = 190 ms; Tam/Tas/Tn/Tv/Trm from the profile)\n\n",
              dev.display_name().c_str());
  {
    server::WorldConfig wc;
    wc.profile = dev;
    wc.deterministic = true;
    server::World world{wc};
    world.server().grant_overlay_permission(server::kMalwareUid);
    core::OverlayAttackConfig oc;
    oc.attacking_window = sim::ms(190);
    core::OverlayAttack attack{world, oc};
    attack.start();
    world.run_until(sim::ms(600));
    print_trace(world.trace(), sim::ms(0), sim::ms(600));
    attack.stop();
    std::puts("\nReading guide: each cycle issues removeView(O_i) then addView(O_{i+1});");
    std::puts("the add event overtakes the remove in transit, O_i is removed instantly,");
    std::puts("System Server finds no overlay and the in-flight/animating alert is reset");
    std::puts("before a naked-eye pixel is presented.");
  }

  std::puts("\n=== Fig. 5: draw-and-destroy toast attack, first two rotations ===\n");
  {
    server::WorldConfig wc;
    wc.profile = dev;
    wc.deterministic = true;
    server::World world{wc};
    core::ToastAttackConfig tc;
    tc.toast_duration = server::kToastLong;
    core::ToastAttack attack{world, tc};
    attack.start();
    world.run_until(sim::ms(7600));
    print_trace(world.trace(), sim::ms(0), sim::ms(7600));
    attack.stop();
    std::puts("\nReading guide: tokens wait in the Notification Manager queue; when a");
    std::puts("toast's 3.5 s elapse, removeView starts the 500 ms fade-out and the next");
    std::puts("token's toast is created immediately (Tas later), overlapping the fade.");
  }
  return 0;
}
