// Table IV — the password-stealing attack against the eight real-world
// apps. All are compromised; Alipay requires the extra username-widget
// workaround because it suppresses password-widget accessibility events.
#include <cstdio>

#include "core/report.hpp"
#include "device/registry.hpp"
#include "input/password.hpp"
#include "input/typist.hpp"
#include "metrics/table.hpp"
#include "victim/catalog.hpp"

int main() {
  using namespace animus;
  const auto panel = input::participant_panel();
  std::puts("=== Table IV: apps under testing ===\n");
  metrics::Table table({"App Name", "Version", "Attacks", "workaround used", "trials",
                        "stolen", "alert suppressed"});
  for (const auto& entry : victim::table_iv_apps()) {
    int trials = 0, stolen = 0, workaround = 0, suppressed = 0;
    for (int i = 0; i < 12; ++i) {
      core::PasswordTrialConfig c;
      c.profile = device::all_devices()[static_cast<std::size_t>(i * 3) % 30];
      c.app = entry.spec;
      c.typist = panel[static_cast<std::size_t>(i) % panel.size()];
      sim::Rng rng{static_cast<std::uint64_t>(900 + i)};
      c.password = input::random_password(8, rng);
      c.seed = static_cast<std::uint64_t>(7000 + i);
      const auto r = core::run_password_trial(c);
      ++trials;
      stolen += r.success;
      workaround += r.used_username_workaround;
      suppressed += r.alert_outcome == percept::LambdaOutcome::kL1;
    }
    const bool compromised = stolen > trials / 2;
    table.add_row({entry.spec.name, entry.spec.version,
                   compromised ? (entry.needs_extra_effort ? "* (extra effort)" : "check")
                               : "FAILED",
                   workaround == trials ? "yes" : (workaround == 0 ? "no" : "mixed"),
                   metrics::fmt("%d", trials), metrics::fmt("%d", stolen),
                   metrics::fmt("%d/%d", suppressed, trials)});
  }
  std::fputs(table.to_string().c_str(), stdout);
  std::puts("\n'check' = compromised with no change (paper's checkmark); '*' = Alipay,");
  std::puts("compromised via the username-widget accessibility workaround of Section VI-C1.");
  return 0;
}
