// Table IV — the password-stealing attack against the eight real-world
// apps. All are compromised; Alipay requires the extra username-widget
// workaround because it suppresses password-widget accessibility events.
//
// Each (app, repetition) cell is an independent World, so the whole grid
// fans out through runner::sweep; stdout is byte-identical at any
// --jobs value (timing goes to stderr).
#include <cstdio>
#include <vector>

#include "core/report.hpp"
#include "device/registry.hpp"
#include "input/password.hpp"
#include "input/typist.hpp"
#include "metrics/table.hpp"
#include "runner/bench_cli.hpp"
#include "runner/runner.hpp"
#include "victim/catalog.hpp"

namespace {
constexpr int kRepetitions = 12;

struct CellResult {
  bool stolen = false;
  bool workaround = false;
  bool suppressed = false;
};
}  // namespace

int main(int argc, char** argv) {
  using namespace animus;
  const auto args = runner::BenchArgs::parse(argc, argv);
  const auto panel = input::participant_panel();
  const auto devices = device::all_devices();
  const auto apps = victim::table_iv_apps();

  struct Trial {
    std::size_t app;
    int rep;
  };
  std::vector<Trial> trials;
  for (std::size_t a = 0; a < apps.size(); ++a)
    for (int i = 0; i < kRepetitions; ++i) trials.push_back({a, i});

  const auto sw = runner::sweep(
      trials,
      [&](const Trial& t, const runner::TrialContext& ctx) {
        core::PasswordTrialConfig c;
        c.profile = devices[static_cast<std::size_t>(t.rep * 3) % devices.size()];
        c.app = apps[t.app].spec;
        c.typist = panel[static_cast<std::size_t>(t.rep) % panel.size()];
        sim::Rng rng = ctx.rng().fork("password");
        c.password = input::random_password(8, rng);
        c.seed = ctx.seed;
        const auto r = core::run_password_trial(c);
        CellResult cell;
        cell.stolen = r.success;
        cell.workaround = r.used_username_workaround;
        cell.suppressed = r.alert_outcome == percept::LambdaOutcome::kL1;
        return cell;
      },
      args.run);
  runner::report("table04", sw);

  runner::note(args, "=== Table IV: apps under testing ===\n");
  metrics::Table table({"App Name", "Version", "Attacks", "workaround used", "trials",
                        "stolen", "alert suppressed"});
  for (std::size_t a = 0; a < apps.size(); ++a) {
    int trials_run = 0, stolen = 0, workaround = 0, suppressed = 0;
    for (int i = 0; i < kRepetitions; ++i) {
      const auto& cell = sw.results[a * kRepetitions + static_cast<std::size_t>(i)];
      ++trials_run;
      stolen += cell.stolen;
      workaround += cell.workaround;
      suppressed += cell.suppressed;
    }
    const auto& entry = apps[a];
    const bool compromised = stolen > trials_run / 2;
    table.add_row({entry.spec.name, entry.spec.version,
                   compromised ? (entry.needs_extra_effort ? "* (extra effort)" : "check")
                               : "FAILED",
                   workaround == trials_run ? "yes" : (workaround == 0 ? "no" : "mixed"),
                   metrics::fmt("%d", trials_run), metrics::fmt("%d", stolen),
                   metrics::fmt("%d/%d", suppressed, trials_run)});
  }
  runner::emit(table, args);
  runner::note(args, "\n'check' = compromised with no change (paper's checkmark); '*' = Alipay,");
  runner::note(args, "compromised via the username-widget accessibility workaround of Section VI-C1.");
  runner::finish(args);
  return sw.ok() ? 0 : 1;
}
