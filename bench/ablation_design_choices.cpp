// Ablations over the attack/defense design choices DESIGN.md calls out:
//  1. the stealer's D safety factor (fraction of the Table II bound);
//  2. toast duration 2 s vs 3.5 s (Section IV-D's recommendation);
//  3. the enhanced-notification delay t (the paper picked 690 ms);
//  4. IPC-defense decision thresholds vs detection latency / false
//     positives;
//  5. ACTION_DOWN harvesting vs full-gesture registration.
#include <cstdio>

#include "core/overlay_attack.hpp"
#include "core/report.hpp"
#include "defense/ipc_defense.hpp"
#include "defense/notification_defense.hpp"
#include "defense/toast_defense.hpp"
#include "device/registry.hpp"
#include "input/password.hpp"
#include "input/typist.hpp"
#include "metrics/stats.hpp"
#include "metrics/table.hpp"
#include "victim/catalog.hpp"

using namespace animus;

namespace {

double password_success(double safety_factor, int trials) {
  const auto panel = input::participant_panel();
  const auto devices = device::all_devices();
  int ok = 0;
  for (int i = 0; i < trials; ++i) {
    core::PasswordTrialConfig c;
    c.profile = devices[static_cast<std::size_t>(i) % devices.size()];
    c.app = victim::table_iv_apps()[static_cast<std::size_t>(i) % 7].spec;
    c.typist = panel[static_cast<std::size_t>(i) % panel.size()];
    sim::Rng rng{static_cast<std::uint64_t>(40000 + i)};
    c.password = input::random_password(8, rng);
    c.seed = static_cast<std::uint64_t>(50000 + i);
    c.d_override = sim::ms_f(safety_factor * c.profile.d_upper_bound_table_ms);
    ok += core::run_password_trial(c).success;
  }
  return 100.0 * ok / trials;
}

double alert_leak_rate(double safety_factor, int trials) {
  const auto panel = input::participant_panel();
  const auto devices = device::all_devices();
  int leaked = 0;
  for (int i = 0; i < trials; ++i) {
    core::PasswordTrialConfig c;
    c.profile = devices[static_cast<std::size_t>(i) % devices.size()];
    c.app = victim::table_iv_apps()[static_cast<std::size_t>(i) % 7].spec;
    c.typist = panel[static_cast<std::size_t>(i) % panel.size()];
    sim::Rng rng{static_cast<std::uint64_t>(41000 + i)};
    c.password = input::random_password(8, rng);
    c.seed = static_cast<std::uint64_t>(51000 + i);
    c.d_override = sim::ms_f(safety_factor * c.profile.d_upper_bound_table_ms);
    leaked += core::run_password_trial(c).alert_outcome != percept::LambdaOutcome::kL1;
  }
  return 100.0 * leaked / trials;
}

}  // namespace

int main() {
  const auto& dev = device::reference_device_android9();

  std::puts("=== Ablation 1: attacking-window safety factor (D / Table II bound) ===\n");
  {
    metrics::Table t({"factor", "len-8 success %", "alert leaked %"});
    for (double f : {0.70, 0.80, 0.88, 0.95, 1.00, 1.05}) {
      t.add_row({metrics::fmt("%.2f", f), metrics::fmt("%.1f", password_success(f, 90)),
                 metrics::fmt("%.1f", alert_leak_rate(f, 90))});
    }
    std::fputs(t.to_string().c_str(), stdout);
    std::puts("\nLarger D captures more touches (fewer mistouch gaps per keystroke) but");
    std::puts("past the bound the warning alert escapes; 0.88 keeps leakage at zero with");
    std::puts("nearly-peak success — the stealer's default.\n");
  }

  std::puts("=== Ablation 2: toast duration 2 s vs 3.5 s (Section IV-D) ===\n");
  {
    metrics::Table t({"duration", "toasts/30s", "min alpha", "flicker"});
    for (auto dur : {server::kToastShort, server::kToastLong}) {
      const auto probe = defense::probe_toast_attack(dev, sim::SimTime{0}, sim::seconds(30), dur);
      t.add_row({metrics::fmt("%.1f s", sim::to_seconds(dur)),
                 metrics::fmt("%d", probe.toasts_shown),
                 metrics::fmt("%.2f", probe.flicker.min_alpha),
                 probe.flicker.noticeable ? "YES" : "no"});
    }
    std::fputs(t.to_string().c_str(), stdout);
    std::puts("\n3.5 s halves the number of switch points — the paper's recommendation.\n");
  }

  std::puts("=== Ablation 3: enhanced-notification delay t ===\n");
  {
    metrics::Table t({"t (ms)", "outcome under attack (D=190)", "alert visible (of 10 s)"});
    for (int delay : {0, 100, 200, 400, 690, 1000}) {
      const auto probe = defense::probe_attack_under_defense(dev, sim::ms(190),
                                                             sim::ms(delay), sim::seconds(10));
      t.add_row({metrics::fmt("%d", delay),
                 std::string(percept::to_string(probe.outcome)),
                 metrics::fmt("%.1f s", sim::to_seconds(probe.alert.visible_time))});
    }
    std::fputs(t.to_string().c_str(), stdout);
    std::puts("\nAny t >= the attack period D defeats the suppression; 690 ms covers every");
    std::puts("device bound in Table II with margin, which is why the paper chose it.\n");
  }

  std::puts("=== Ablation 4: IPC-defense thresholds ===\n");
  {
    metrics::Table t({"min pairs", "gap thr (ms)", "detects attack", "flags 2s toggler",
                      "detection latency"});
    for (int pairs : {4, 8, 16}) {
      for (int gap : {100, 500}) {
        server::WorldConfig wc;
        wc.profile = dev;
        wc.trace_enabled = false;
        server::World world{wc};
        world.server().grant_overlay_permission(server::kMalwareUid);
        world.server().grant_overlay_permission(server::kBenignUid);
        defense::IpcDefenseConfig cfg;
        cfg.min_pairs = pairs;
        cfg.pair_gap_threshold = sim::ms(gap);
        defense::IpcDefenseAnalyzer analyzer{cfg};
        analyzer.attach(world.transactions());
        core::OverlayAttackConfig oc;
        oc.attacking_window = sim::ms(190);
        core::OverlayAttack attack{world, oc};
        attack.start();
        // Benign toggler: show 1.5 s, hide, every 2 s.
        for (int i = 0; i < 20; ++i) {
          world.loop().schedule_at(sim::seconds(2 * i), [&world] {
            server::OverlaySpec spec;
            spec.bounds = {0, 0, 200, 200};
            const auto h = world.server().add_view(server::kBenignUid, spec);
            world.loop().schedule_after(sim::ms(1500), [&world, h] {
              world.server().remove_view(server::kBenignUid, h);
            });
          });
        }
        world.run_until(sim::seconds(40));
        attack.stop();
        std::string latency = "-";
        for (const auto& d : analyzer.detections()) {
          if (d.uid == server::kMalwareUid) {
            latency = metrics::fmt("%.1f s", sim::to_seconds(d.last_pair));
          }
        }
        t.add_row({metrics::fmt("%d", pairs), metrics::fmt("%d", gap),
                   analyzer.flagged(server::kMalwareUid) ? "yes" : "NO",
                   analyzer.flagged(server::kBenignUid) ? "YES (false positive)" : "no",
                   latency});
      }
    }
    std::fputs(t.to_string().c_str(), stdout);
    std::puts("\nThe rule is robust across thresholds: the attack's remove->add pairs are");
    std::puts("orders of magnitude denser than any benign overlay usage.\n");
  }

  std::puts("=== Ablation 5: ACTION_DOWN harvesting vs gesture registration ===\n");
  {
    metrics::Table t({"delivery", "capture % (D=150, Android 9)", "capture % (Android 10)"});
    for (bool on_down : {true, false}) {
      double rates[2] = {0, 0};
      int idx = 0;
      for (const char* model : {"mi8", "mi9"}) {
        const auto d = device::find_device(model);
        metrics::RunningStats rs;
        for (int i = 0; i < 10; ++i) {
          server::WorldConfig wc;
          wc.profile = *d;
          wc.seed = 600 + i;
          wc.trace_enabled = false;
          server::World world{wc};
          world.server().grant_overlay_permission(server::kMalwareUid);
          core::OverlayAttackConfig oc;
          oc.attacking_window = sim::ms(150);
          oc.bounds = {90, 900, 900, 600};
          oc.capture_on_down = on_down;
          core::OverlayAttack attack{world, oc};
          attack.start();
          input::Typist typist{input::participant_panel()[i % 30],
                               world.fork_rng("t").fork(i)};
          const auto taps = typist.plan_taps({90, 900, 900, 600}, 100, sim::ms(500));
          for (const auto& pt : taps) {
            world.loop().schedule_at(pt.at, [&world, pt] { world.input().inject_tap(pt.point); });
          }
          world.run_until(taps.back().at + sim::ms(500));
          rs.add(attack.stats().captures);
          attack.stop();
        }
        rates[idx++] = rs.mean();
      }
      t.add_row({on_down ? "ACTION_DOWN (password attack)" : "full gesture (test app)",
                 metrics::fmt("%.1f", rates[0]), metrics::fmt("%.1f", rates[1])});
    }
    std::fputs(t.to_string().c_str(), stdout);
    std::puts("\nDOWN-harvesting is immune to mid-gesture window destruction, which is how");
    std::puts("Table III's near-perfect per-touch capture coexists with Fig. 7's ~90%.");
  }
  return 0;
}
