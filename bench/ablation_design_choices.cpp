// Ablations over the attack/defense design choices DESIGN.md calls out:
//  1. the stealer's D safety factor (fraction of the Table II bound);
//  2. toast duration 2 s vs 3.5 s (Section IV-D's recommendation);
//  3. the enhanced-notification delay t (the paper picked 690 ms);
//  4. IPC-defense decision thresholds vs detection latency / false
//     positives;
//  5. ACTION_DOWN harvesting vs full-gesture registration.
//
// Each ablation fans its independent Worlds out through runner::sweep
// (flattened to per-trial granularity where the inner loops are the
// cost, ablations 1 and 5) and aggregates in submission order, so
// stdout is byte-identical at any --jobs value — and, because every
// trial keeps its historical fixed seed, identical to the old serial
// bench as well.
#include <cstdio>
#include <string>
#include <vector>

#include "core/overlay_attack.hpp"
#include "core/report.hpp"
#include "core/trial_session.hpp"
#include "defense/enforcement.hpp"
#include "defense/ipc_defense.hpp"
#include "defense/notification_defense.hpp"
#include "defense/toast_defense.hpp"
#include "device/registry.hpp"
#include "input/password.hpp"
#include "input/typist.hpp"
#include "metrics/stats.hpp"
#include "metrics/table.hpp"
#include "percept/outcomes.hpp"
#include "runner/bench_cli.hpp"
#include "runner/runner.hpp"
#include "server/world.hpp"
#include "victim/catalog.hpp"

using namespace animus;

namespace {

/// One len-8 password trial at `safety_factor` of the Table II bound.
/// Seeds are fixed per (kind, i) — the historical serial scheme — so the
/// percentages below reproduce the pre-runner bench exactly.
core::PasswordTrialResult password_probe(double safety_factor, int i, bool leak_probe) {
  const auto panel = input::participant_panel();
  const auto devices = device::all_devices();
  core::PasswordTrialConfig c;
  c.profile = devices[static_cast<std::size_t>(i) % devices.size()];
  c.app = victim::table_iv_apps()[static_cast<std::size_t>(i) % 7].spec;
  c.typist = panel[static_cast<std::size_t>(i) % panel.size()];
  sim::Rng rng{static_cast<std::uint64_t>((leak_probe ? 41000 : 40000) + i)};
  c.password = input::random_password(8, rng);
  c.seed = static_cast<std::uint64_t>((leak_probe ? 51000 : 50000) + i);
  c.d_override = sim::ms_f(safety_factor * c.profile.d_upper_bound_table_ms);
  return core::TrialSession::local().run(c);
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = runner::BenchArgs::parse(argc, argv);
  const auto& dev = device::reference_device_android9();

  runner::note(args, "=== Ablation 1: attacking-window safety factor (D / Table II bound) ===\n");
  {
    const std::vector<double> factors = {0.70, 0.80, 0.88, 0.95, 1.00, 1.05};
    constexpr int kTrials = 90;
    // Flattened: (factor, trial, success-vs-leak probe) per sweep item.
    struct Probe {
      double factor;
      int i;
      bool leak;
    };
    std::vector<Probe> probes;
    for (double f : factors) {
      for (int i = 0; i < kTrials; ++i) probes.push_back({f, i, false});
      for (int i = 0; i < kTrials; ++i) probes.push_back({f, i, true});
    }
    const auto sweep = runner::sweep(
        probes,
        [](const Probe& p, const runner::TrialContext&) {
          const auto r = password_probe(p.factor, p.i, p.leak);
          return p.leak ? r.alert_outcome != percept::LambdaOutcome::kL1 : r.success;
        },
        args.run);
    runner::report("ablation:safety_factor", sweep);

    metrics::Table t({"factor", "len-8 success %", "alert leaked %"});
    for (std::size_t f = 0; f < factors.size(); ++f) {
      int ok = 0;
      int leaked = 0;
      const std::size_t base = f * 2 * kTrials;
      for (int i = 0; i < kTrials; ++i) {
        ok += sweep.results[base + static_cast<std::size_t>(i)];
        leaked += sweep.results[base + kTrials + static_cast<std::size_t>(i)];
      }
      t.add_row({metrics::fmt("%.2f", factors[f]),
                 metrics::fmt("%.1f", 100.0 * ok / kTrials),
                 metrics::fmt("%.1f", 100.0 * leaked / kTrials)});
    }
    runner::emit(t, args);
    runner::note(args, "\nLarger D captures more touches (fewer mistouch gaps per keystroke) but");
    runner::note(args, "past the bound the warning alert escapes; 0.88 keeps leakage at zero with");
    runner::note(args, "nearly-peak success — the stealer's default.\n");
  }

  runner::note(args, "=== Ablation 2: toast duration 2 s vs 3.5 s (Section IV-D) ===\n");
  {
    const std::vector<sim::SimTime> durations = {server::kToastShort, server::kToastLong};
    const auto sweep = runner::sweep(
        durations,
        [&](sim::SimTime dur, const runner::TrialContext&) {
          return defense::probe_toast_attack(dev, sim::SimTime{0}, sim::seconds(30), dur);
        },
        args.run);
    runner::report("ablation:toast_duration", sweep);

    metrics::Table t({"duration", "toasts/30s", "min alpha", "flicker"});
    for (std::size_t d = 0; d < durations.size(); ++d) {
      const auto& probe = sweep.results[d];
      t.add_row({metrics::fmt("%.1f s", sim::to_seconds(durations[d])),
                 metrics::fmt("%d", probe.toasts_shown),
                 metrics::fmt("%.2f", probe.flicker.min_alpha),
                 probe.flicker.noticeable ? "YES" : "no"});
    }
    runner::emit(t, args);
    runner::note(args, "\n3.5 s halves the number of switch points — the paper's recommendation.\n");
  }

  runner::note(args, "=== Ablation 3: enhanced-notification delay t ===\n");
  {
    const std::vector<int> delays = {0, 100, 200, 400, 690, 1000};
    const auto sweep = runner::sweep(
        delays,
        [&](int delay, const runner::TrialContext&) {
          return defense::probe_attack_under_defense(dev, sim::ms(190), sim::ms(delay),
                                                     sim::seconds(10));
        },
        args.run);
    runner::report("ablation:notification_delay", sweep);

    metrics::Table t({"t (ms)", "outcome under attack (D=190)", "alert visible (of 10 s)"});
    for (std::size_t d = 0; d < delays.size(); ++d) {
      const auto& probe = sweep.results[d];
      t.add_row({metrics::fmt("%d", delays[d]), std::string(percept::to_string(probe.outcome)),
                 metrics::fmt("%.1f s", sim::to_seconds(probe.alert.visible_time))});
    }
    runner::emit(t, args);
    runner::note(args, "\nAny t >= the attack period D defeats the suppression; 690 ms covers every");
    runner::note(args, "device bound in Table II with margin, which is why the paper chose it.\n");
  }

  runner::note(args, "=== Ablation 4: IPC-defense thresholds ===\n");
  {
    struct Thresholds {
      int pairs;
      int gap;
    };
    std::vector<Thresholds> grid;
    for (int pairs : {4, 8, 16}) {
      for (int gap : {100, 500}) grid.push_back({pairs, gap});
    }
    struct IpcResult {
      bool flagged_attack = false;
      bool flagged_benign = false;
      std::string latency = "-";
    };
    const auto sweep = runner::sweep(
        grid,
        [&](const Thresholds& th, const runner::TrialContext&) {
          server::WorldConfig wc;
          wc.profile = dev;
          wc.trace_enabled = false;
          server::World world{wc};
          world.server().grant_overlay_permission(server::kMalwareUid);
          world.server().grant_overlay_permission(server::kBenignUid);
          defense::IpcDefenseConfig cfg;
          cfg.min_pairs = th.pairs;
          cfg.pair_gap_threshold = sim::ms(th.gap);
          defense::IpcDefenseAnalyzer analyzer{cfg};
          analyzer.attach(world.transactions());
          core::OverlayAttackConfig oc;
          oc.attacking_window = sim::ms(190);
          core::OverlayAttack attack{world, oc};
          attack.start();
          // Benign toggler: show 1.5 s, hide, every 2 s.
          for (int i = 0; i < 20; ++i) {
            world.loop().schedule_at(sim::seconds(2 * i), [&world] {
              server::OverlaySpec spec;
              spec.bounds = {0, 0, 200, 200};
              const auto h = world.server().add_view(server::kBenignUid, spec);
              world.loop().schedule_after(sim::ms(1500), [&world, h] {
                world.server().remove_view(server::kBenignUid, h);
              });
            });
          }
          world.run_until(sim::seconds(40));
          attack.stop();
          IpcResult r;
          r.flagged_attack = analyzer.flagged(server::kMalwareUid);
          r.flagged_benign = analyzer.flagged(server::kBenignUid);
          for (const auto& d : analyzer.detections()) {
            if (d.uid == server::kMalwareUid) {
              r.latency = metrics::fmt("%.1f s", sim::to_seconds(d.last_pair));
            }
          }
          return r;
        },
        args.run);
    runner::report("ablation:ipc_thresholds", sweep);

    metrics::Table t({"min pairs", "gap thr (ms)", "detects attack", "flags 2s toggler",
                      "detection latency"});
    for (std::size_t g = 0; g < grid.size(); ++g) {
      const auto& r = sweep.results[g];
      t.add_row({metrics::fmt("%d", grid[g].pairs), metrics::fmt("%d", grid[g].gap),
                 r.flagged_attack ? "yes" : "NO",
                 r.flagged_benign ? "YES (false positive)" : "no", r.latency});
    }
    runner::emit(t, args);
    runner::note(args, "\nThe rule is robust across thresholds: the attack's remove->add pairs are");
    runner::note(args, "orders of magnitude denser than any benign overlay usage.\n");
  }

  runner::note(args, "=== Ablation 5: ACTION_DOWN harvesting vs gesture registration ===\n");
  {
    constexpr int kReps = 10;
    struct CaptureTrial {
      bool on_down;
      const char* model;
      int i;
    };
    std::vector<CaptureTrial> trials;
    for (bool on_down : {true, false}) {
      for (const char* model : {"mi8", "mi9"}) {
        for (int i = 0; i < kReps; ++i) trials.push_back({on_down, model, i});
      }
    }
    const auto sweep = runner::sweep(
        trials,
        [](const CaptureTrial& trial, const runner::TrialContext&) {
          const auto d = device::find_device(trial.model);
          server::WorldConfig wc;
          wc.profile = *d;
          wc.seed = static_cast<std::uint64_t>(600 + trial.i);
          wc.trace_enabled = false;
          server::World world{wc};
          world.server().grant_overlay_permission(server::kMalwareUid);
          core::OverlayAttackConfig oc;
          oc.attacking_window = sim::ms(150);
          oc.bounds = {90, 900, 900, 600};
          oc.capture_on_down = trial.on_down;
          core::OverlayAttack attack{world, oc};
          attack.start();
          input::Typist typist{input::participant_panel()[trial.i % 30],
                               world.fork_rng("t").fork(trial.i)};
          const auto taps = typist.plan_taps({90, 900, 900, 600}, 100, sim::ms(500));
          for (const auto& pt : taps) {
            world.loop().schedule_at(pt.at, [&world, pt] { world.input().inject_tap(pt.point); });
          }
          world.run_until(taps.back().at + sim::ms(500));
          const double captures = attack.stats().captures;
          attack.stop();
          return captures;
        },
        args.run);
    runner::report("ablation:down_harvesting", sweep);

    metrics::Table t({"delivery", "capture % (D=150, Android 9)", "capture % (Android 10)"});
    for (int delivery = 0; delivery < 2; ++delivery) {
      double rates[2] = {0, 0};
      for (int m = 0; m < 2; ++m) {
        metrics::RunningStats rs;
        const std::size_t base = static_cast<std::size_t>(delivery * 2 + m) * kReps;
        for (int i = 0; i < kReps; ++i) rs.add(sweep.results[base + static_cast<std::size_t>(i)]);
        rates[m] = rs.mean();
      }
      t.add_row({delivery == 0 ? "ACTION_DOWN (password attack)" : "full gesture (test app)",
                 metrics::fmt("%.1f", rates[0]), metrics::fmt("%.1f", rates[1])});
    }
    runner::emit(t, args);
    runner::note(args, "\nDOWN-harvesting is immune to mid-gesture window destruction, which is how");
    runner::note(args, "Table III's near-perfect per-touch capture coexists with Fig. 7's ~90%.");
  }

  runner::finish(args);
  return 0;
}
