// Section VI-B "Impact of the load" — the upper boundary of D with 0, 3
// and 5 popular apps running in the background is almost unchanged.
#include <cstdio>

#include "core/attack_analysis.hpp"
#include "device/registry.hpp"
#include "metrics/table.hpp"

int main() {
  using namespace animus;
  std::puts("=== Impact of background load on the upper boundary of D ===\n");
  metrics::Table table({"Model", "no apps", "3 apps", "5 apps", "max delta (ms)"});
  double worst = 0.0;
  for (const char* model : {"pixel 2", "mi8", "Redmi", "s8", "mate20"}) {
    const auto dev = device::find_device(model);
    const int d0 = core::find_d_upper_bound_ms(*dev);
    const int d3 = core::find_d_upper_bound_ms(dev->with_load(3));
    const int d5 = core::find_d_upper_bound_ms(dev->with_load(5));
    const double delta = std::max(std::abs(d3 - d0), std::abs(d5 - d0));
    worst = std::max(worst, delta);
    table.add_row({dev->model, metrics::fmt("%d", d0), metrics::fmt("%d", d3),
                   metrics::fmt("%d", d5), metrics::fmt("%.0f", delta)});
  }
  std::fputs(table.to_string().c_str(), stdout);
  std::printf("\nLargest shift across all load levels: %.0f ms.\n", worst);
  std::puts("Paper: \"the optimal upper boundaries of D for no app, three apps and five");
  std::puts("apps in the background are almost the same ... the influence of the load");
  std::puts("on the phone is negligible.\"");
  return 0;
}
