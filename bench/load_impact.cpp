// Section VI-B "Impact of the load" — the upper boundary of D with 0, 3
// and 5 popular apps running in the background is almost unchanged.
//
// Each (model, load) cell is an independent binary search over full
// attack simulations, so the grid fans out through the checkpoint-aware
// campaign sweep; stdout is byte-identical at any --jobs value.
#include <cmath>
#include <cstdio>
#include <vector>

#include "core/attack_analysis.hpp"
#include "core/trial_session.hpp"
#include "device/registry.hpp"
#include "metrics/table.hpp"
#include "runner/bench_cli.hpp"
#include "runner/runner.hpp"

int main(int argc, char** argv) {
  using namespace animus;
  const auto args = runner::BenchArgs::parse(argc, argv);
  const auto tier = core::parse_tier(args.tier).value_or(core::Tier::kAuto);
  const std::vector<const char*> models = {"pixel 2", "mi8", "Redmi", "s8", "mate20"};
  const std::vector<int> loads = {0, 3, 5};

  struct Trial {
    const char* model;
    int load;
  };
  std::vector<Trial> trials;
  for (const char* model : models)
    for (int load : loads) trials.push_back({model, load});

  const auto sw = runner::run_campaign(
      "load_impact", trials,
      [&](const Trial& t, const runner::TrialContext& ctx) {
        const auto dev = device::find_device(t.model);
        core::DBoundTrialConfig c;
        c.profile = t.load == 0 ? *dev : dev->with_load(t.load);
        c.seed = ctx.seed;  // unused while deterministic, kept for replay
        c.tier = tier;
        return core::TrialSession::local().run(c).d_upper_ms;
      },
      args);

  runner::note(args, "=== Impact of background load on the upper boundary of D ===\n");
  metrics::Table table({"Model", "no apps", "3 apps", "5 apps", "max delta (ms)"});
  double worst = 0.0;
  for (std::size_t mi = 0; mi < models.size(); ++mi) {
    const int d0 = sw.results[mi * loads.size() + 0];
    const int d3 = sw.results[mi * loads.size() + 1];
    const int d5 = sw.results[mi * loads.size() + 2];
    const double delta = std::max(std::abs(d3 - d0), std::abs(d5 - d0));
    worst = std::max(worst, delta);
    table.add_row({device::find_device(models[mi])->model, metrics::fmt("%d", d0),
                   metrics::fmt("%d", d3), metrics::fmt("%d", d5),
                   metrics::fmt("%.0f", delta)});
  }
  runner::emit(table, args);
  if (!args.csv) {
    std::printf("\nLargest shift across all load levels: %.0f ms.\n", worst);
    std::puts("Paper: \"the optimal upper boundaries of D for no app, three apps and five");
    std::puts("apps in the background are almost the same ... the influence of the load");
    std::puts("on the phone is negligible.\"");
  }
  runner::finish(args);
  return sw.ok() ? 0 : 1;
}
