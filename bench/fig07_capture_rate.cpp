// Fig. 7 — box plot of touch-event capture rate vs the attacking window
// D in the draw-and-destroy overlay attack: 30 participants, each typing
// 10 strings of 10 random characters into the instrumented test app on
// their own phone, for D in {50..200} ms.
//
// Paper means: 61.0 79.8 86.7 89.0 91.0 92.8 92.8 (%).
#include <cstdio>
#include <vector>

#include "core/report.hpp"
#include "device/registry.hpp"
#include "input/typist.hpp"
#include "metrics/stats.hpp"
#include "metrics/table.hpp"

int main() {
  using namespace animus;
  const auto panel = input::participant_panel();
  const auto devices = device::all_devices();
  const double paper_means[] = {61.0, 79.8, 86.7, 89.0, 91.0, 92.8, 92.8};

  std::puts("=== Fig. 7: touch-event capture rate vs D (30 participants) ===\n");
  metrics::Table table({"D (ms)", "min", "Q1", "median", "Q3", "max", "mean", "paper mean"});
  int idx = 0;
  for (int d : {50, 75, 100, 125, 150, 175, 200}) {
    std::vector<double> rates;
    for (std::size_t p = 0; p < panel.size(); ++p) {
      core::CaptureTrialConfig c;
      c.profile = devices[p % devices.size()];
      c.typist = panel[p];
      c.attacking_window = sim::ms(d);
      c.touches = 100;  // 10 strings x 10 characters
      c.seed = 1000 + p;
      rates.push_back(core::run_capture_trial(c).rate * 100.0);
    }
    const auto bp = metrics::box_plot(rates);
    table.add_row({metrics::fmt("%d", d), metrics::fmt("%.1f", bp.summary.min),
                   metrics::fmt("%.1f", bp.summary.q1), metrics::fmt("%.1f", bp.summary.median),
                   metrics::fmt("%.1f", bp.summary.q3), metrics::fmt("%.1f", bp.summary.max),
                   metrics::fmt("%.1f", bp.mean), metrics::fmt("%.1f", paper_means[idx++])});
  }
  std::fputs(table.to_string().c_str(), stdout);
  std::puts("\nShape checks (paper, Section VI-B):");
  std::puts("  - mean capture rate increases monotonically with D;");
  std::puts("  - saturates around ~92% by D = 175-200 ms;");
  std::puts("  - ~90% is reached near D = 150 ms.");
  return 0;
}
