// Fig. 7 — box plot of touch-event capture rate vs the attacking window
// D in the draw-and-destroy overlay attack: 30 participants, each typing
// 10 strings of 10 random characters into the instrumented test app on
// their own phone, for D in {50..200} ms.
//
// Paper means: 61.0 79.8 86.7 89.0 91.0 92.8 92.8 (%).
//
// The sweep + table logic lives in service/benches.cpp, shared with the
// campaign daemon so a daemon-submitted fig07 produces a CSV
// byte-identical to this binary's --csv output.
#include "runner/bench_cli.hpp"
#include "service/benches.hpp"

int main(int argc, char** argv) {
  using namespace animus;
  const auto args = runner::BenchArgs::parse(argc, argv);
  const auto out = service::find_campaign_bench("fig07")->run(args);

  runner::note(args, "=== Fig. 7: touch-event capture rate vs D (30 participants) ===\n");
  runner::emit(out.table, args);
  runner::note(args, "\nShape checks (paper, Section VI-B):");
  runner::note(args, "  - mean capture rate increases monotonically with D;");
  runner::note(args, "  - saturates around ~92% by D = 175-200 ms;");
  runner::note(args, "  - ~90% is reached near D = 150 ms.");
  runner::finish(args);
  return out.ok ? 0 : 1;
}
