// Fig. 7 — box plot of touch-event capture rate vs the attacking window
// D in the draw-and-destroy overlay attack: 30 participants, each typing
// 10 strings of 10 random characters into the instrumented test app on
// their own phone, for D in {50..200} ms.
//
// Paper means: 61.0 79.8 86.7 89.0 91.0 92.8 92.8 (%).
//
// Each (D, participant) cell is an independent World, so the whole grid
// fans out through runner::sweep; stdout is byte-identical at any
// --jobs value (timing goes to stderr).
#include <cstdio>
#include <vector>

#include "core/report.hpp"
#include "core/trial_session.hpp"
#include "device/registry.hpp"
#include "input/typist.hpp"
#include "metrics/stats.hpp"
#include "metrics/table.hpp"
#include "runner/bench_cli.hpp"
#include "runner/runner.hpp"

int main(int argc, char** argv) {
  using namespace animus;
  const auto args = runner::BenchArgs::parse(argc, argv);
  const auto panel = input::participant_panel();
  const auto devices = device::all_devices();
  const double paper_means[] = {61.0, 79.8, 86.7, 89.0, 91.0, 92.8, 92.8};
  const std::vector<int> windows = {50, 75, 100, 125, 150, 175, 200};

  struct Trial {
    int d;
    std::size_t participant;
  };
  std::vector<Trial> trials;
  for (int d : windows)
    for (std::size_t p = 0; p < panel.size(); ++p) trials.push_back({d, p});

  // Checkpoint-aware sweep: honors --checkpoint-out / --resume-from.
  const auto sw = runner::run_campaign(
      "fig07", trials,
      [&](const Trial& t, const runner::TrialContext& ctx) {
        core::CaptureTrialConfig c;
        c.profile = devices[t.participant % devices.size()];
        c.typist = panel[t.participant];
        c.attacking_window = sim::ms(t.d);
        c.touches = 100;  // 10 strings x 10 characters
        c.seed = ctx.seed;
        return core::TrialSession::local().run(c).rate * 100.0;
      },
      args);

  runner::note(args, "=== Fig. 7: touch-event capture rate vs D (30 participants) ===\n");
  metrics::Table table({"D (ms)", "min", "Q1", "median", "Q3", "max", "mean", "paper mean"});
  for (std::size_t di = 0; di < windows.size(); ++di) {
    const auto first = sw.results.begin() + static_cast<std::ptrdiff_t>(di * panel.size());
    const std::vector<double> rates(first, first + static_cast<std::ptrdiff_t>(panel.size()));
    const auto bp = metrics::box_plot(rates);
    table.add_row({metrics::fmt("%d", windows[di]), metrics::fmt("%.1f", bp.summary.min),
                   metrics::fmt("%.1f", bp.summary.q1), metrics::fmt("%.1f", bp.summary.median),
                   metrics::fmt("%.1f", bp.summary.q3), metrics::fmt("%.1f", bp.summary.max),
                   metrics::fmt("%.1f", bp.mean), metrics::fmt("%.1f", paper_means[di])});
  }
  runner::emit(table, args);
  runner::note(args, "\nShape checks (paper, Section VI-B):");
  runner::note(args, "  - mean capture rate increases monotonically with D;");
  runner::note(args, "  - saturates around ~92% by D = 175-200 ms;");
  runner::note(args, "  - ~90% is reached near D = 150 ms.");
  runner::finish(args);
  return sw.ok() ? 0 : 1;
}
