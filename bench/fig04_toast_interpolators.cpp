// Fig. 4 — Time vs. percentage of animation completeness for the toast
// enter (DecelerateInterpolator, fast then slow) and exit
// (AccelerateInterpolator, slow then fast) animations over 500 ms.
//
// The exploited asymmetry: a disappearing toast keeps ~96% opacity 100 ms
// into its exit, so a replacement fading in quickly is indistinguishable.
#include <cstdio>
#include <vector>

#include "metrics/histogram.hpp"
#include "metrics/table.hpp"
#include "ui/animation.hpp"

int main() {
  using namespace animus;
  const ui::Animation in = ui::toast_fade_in();
  const ui::Animation out = ui::toast_fade_out();

  std::puts("=== Fig. 4: toast animations, completeness vs time (500 ms) ===\n");
  metrics::Table table({"t (ms)", "Decelerate (enter)", "Accelerate (exit)",
                        "old-toast alpha", "new-toast alpha"});
  std::vector<double> xs, accel, decel;
  for (int t = 0; t <= 500; t += 10) {
    const double yi = in.completeness_at(sim::ms(t));
    const double yo = out.completeness_at(sim::ms(t));
    xs.push_back(t);
    decel.push_back(yi * 100.0);
    accel.push_back(yo * 100.0);
    if (t % 50 == 0) {
      table.add_row({metrics::fmt("%d", t), metrics::percent(yi), metrics::percent(yo),
                     metrics::fmt("%.3f", 1.0 - yo), metrics::fmt("%.3f", yi)});
    }
  }
  std::puts("DecelerateInterpolator (enter):");
  std::fputs(metrics::ascii_curve(xs, decel).c_str(), stdout);
  std::puts("AccelerateInterpolator (exit):");
  std::fputs(metrics::ascii_curve(xs, accel).c_str(), stdout);
  std::puts("");
  std::fputs(table.to_string().c_str(), stdout);

  std::puts("\nPaper anchors:");
  std::printf("  exit completeness at 100 ms : %s (y = x^2: 4%%)\n",
              metrics::percent(out.completeness_at(sim::ms(100))).c_str());
  std::printf("  enter completeness at 100 ms: %s (y = 1-(1-x)^2: 36%%)\n",
              metrics::percent(in.completeness_at(sim::ms(100))).c_str());
  return 0;
}
