// Section VI-C2 — legality/prevalence of the attack's permissions and
// methods across an app-store-scale corpus: 890,855 (synthetic) apps run
// through the full aapt-lite + FlowDroid-lite pipeline.
//
// Paper counts: 4,405 apps with SYSTEM_ALERT_WINDOW + accessibility
// service; 18,887 apps calling addView+removeView with
// SYSTEM_ALERT_WINDOW; 15,179 apps using a customized toast.
#include <chrono>
#include <cstdio>

#include "analysis/corpus.hpp"
#include "metrics/table.hpp"

int main(int argc, char** argv) {
  using namespace animus;
  // Full scan by default; `--quick` samples 1 in 37 and scales.
  std::size_t stride = 1;
  if (argc > 1 && std::string_view(argv[1]) == "--quick") stride = 37;

  analysis::Corpus corpus{2016};
  std::printf("=== Prevalence analysis over %zu apps (stride %zu) ===\n\n", corpus.size(),
              stride);
  const auto t0 = std::chrono::steady_clock::now();
  const auto counts = analysis::count_attack_prerequisites(corpus, stride);
  const auto elapsed = std::chrono::duration<double>(std::chrono::steady_clock::now() - t0);

  metrics::Table table({"Predicate", "measured", "paper", "delta"});
  auto row = [&table](const char* name, std::size_t got, std::size_t want) {
    table.add_row({name, metrics::fmt("%zu", got), metrics::fmt("%zu", want),
                   metrics::fmt("%+.1f%%", 100.0 * (static_cast<double>(got) -
                                                    static_cast<double>(want)) /
                                               static_cast<double>(want))});
  };
  row("SYSTEM_ALERT_WINDOW + accessibility service", counts.saw_and_accessibility, 4405);
  row("addView + removeView + SYSTEM_ALERT_WINDOW", counts.addremove_and_saw, 18887);
  row("customized toast (Toast.setView)", counts.custom_toast, 15179);
  std::fputs(table.to_string().c_str(), stdout);
  std::printf("\nManifests parsed: %zu, parse failures: %zu, %.2f s (%.0f apps/s)\n",
              counts.total / stride, counts.parse_failures, elapsed.count(),
              static_cast<double>(counts.total / stride) / elapsed.count());
  std::puts("\nConclusion (paper): app stores admit apps using the accessibility service,");
  std::puts("overlays and customized toasts, so the malicious app has distribution paths.");
  return 0;
}
