// Section VI-C2 — legality/prevalence of the attack's permissions and
// methods across an app-store-scale corpus: 890,855 (synthetic) apps run
// through the full aapt-lite + FlowDroid-lite pipeline.
//
// Paper counts: 4,405 apps with SYSTEM_ALERT_WINDOW + accessibility
// service; 18,887 apps calling addView+removeView with
// SYSTEM_ALERT_WINDOW; 15,179 apps using a customized toast.
//
// The corpus is streamed in fixed shards through runner::sweep — each
// trial scans one contiguous sample range and returns raw counts, which
// merge by summation in submission order, so stdout is byte-identical
// at any --jobs value (throughput goes to stderr via runner::report).
#include <cstdio>
#include <numeric>
#include <string_view>
#include <vector>

#include "analysis/corpus.hpp"
#include "metrics/table.hpp"
#include "runner/bench_cli.hpp"
#include "runner/runner.hpp"

int main(int argc, char** argv) {
  using namespace animus;
  // Full scan by default; `--quick` samples 1 in 37 and scales. The flag
  // is consumed before the shared CLI sees the rest.
  std::size_t stride = 1;
  std::vector<char*> rest;
  rest.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]) == "--quick") {
      stride = 37;
    } else {
      rest.push_back(argv[i]);
    }
  }
  const auto args = runner::BenchArgs::parse(static_cast<int>(rest.size()), rest.data());

  analysis::Corpus corpus{2016};
  std::printf("=== Prevalence analysis over %zu apps (stride %zu) ===\n\n", corpus.size(),
              stride);

  // Fixed shard count: the work distribution (and thus the merge) is
  // independent of --jobs; stealing only changes which worker scans a
  // shard, never what the shard contains.
  const std::size_t samples = (corpus.size() + stride - 1) / stride;
  constexpr std::size_t kShards = 128;
  std::vector<std::size_t> shards(kShards);
  std::iota(shards.begin(), shards.end(), std::size_t{0});

  const auto sweep = runner::sweep(
      shards,
      [&](std::size_t shard, const runner::TrialContext&) {
        const std::size_t begin = shard * samples / kShards;
        const std::size_t end = (shard + 1) * samples / kShards;
        return analysis::count_attack_prerequisites_range(corpus, begin, end, stride);
      },
      args.run);
  runner::report("prevalence", sweep);

  analysis::CorpusCounts raw;
  for (const auto& shard : sweep.results) {
    raw.total += shard.total;
    raw.saw_and_accessibility += shard.saw_and_accessibility;
    raw.addremove_and_saw += shard.addremove_and_saw;
    raw.custom_toast += shard.custom_toast;
    raw.parse_failures += shard.parse_failures;
  }
  const std::size_t parsed = raw.total;
  const auto counts = analysis::scale_sampled_counts(raw, corpus.size());

  metrics::Table table({"Predicate", "measured", "paper", "delta"});
  auto row = [&table](const char* name, std::size_t got, std::size_t want) {
    table.add_row({name, metrics::fmt("%zu", got), metrics::fmt("%zu", want),
                   metrics::fmt("%+.1f%%", 100.0 * (static_cast<double>(got) -
                                                    static_cast<double>(want)) /
                                               static_cast<double>(want))});
  };
  row("SYSTEM_ALERT_WINDOW + accessibility service", counts.saw_and_accessibility, 4405);
  row("addView + removeView + SYSTEM_ALERT_WINDOW", counts.addremove_and_saw, 18887);
  row("customized toast (Toast.setView)", counts.custom_toast, 15179);
  runner::emit(table, args);
  std::printf("\nManifests parsed: %zu, parse failures: %zu\n", parsed, raw.parse_failures);
  // Wall-clock throughput is telemetry, not a result — stderr keeps
  // stdout reproducible byte-for-byte.
  std::fprintf(stderr, "[prevalence] %.2f ms (%.0f apps/s)\n", sweep.stats.wall_ms,
               1000.0 * static_cast<double>(parsed) / sweep.stats.wall_ms);

  runner::note(args,
               "\nConclusion (paper): app stores admit apps using the accessibility service,");
  runner::note(args,
               "overlays and customized toasts, so the malicious app has distribution paths.");
  runner::finish(args);
  return 0;
}
