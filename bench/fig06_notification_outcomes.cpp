// Fig. 6 — the five possible outcomes Λ1..Λ5 of the notification view as
// the attacking window D grows, produced by running the actual
// draw-and-destroy overlay attack at each D on a reference device and
// classifying what the user could see.
//
// Both the coarse outcome table and the 1 ms transition scan are
// independent campaigns ("fig06:table" / "fig06:scan"), so they fan out
// through runner::run_campaign — checkpointing both sweeps as sections
// of one file — and stdout is byte-identical at any --jobs, --backend
// or --shards value (timing goes to stderr).
#include <cstdio>
#include <vector>

#include "core/attack_analysis.hpp"
#include "core/trial_fields.hpp"
#include "core/trial_session.hpp"
#include "device/registry.hpp"
#include "metrics/table.hpp"
#include "percept/outcomes.hpp"
#include "runner/bench_cli.hpp"
#include "runner/runner.hpp"

int main(int argc, char** argv) {
  using namespace animus;
  const auto args = runner::BenchArgs::parse(argc, argv);
  const auto tier = core::parse_tier(args.tier).value_or(core::Tier::kAuto);
  const auto& dev = device::reference_device_android9();
  if (!args.csv) {
    std::printf("=== Fig. 6: notification view outcomes vs D on %s ===\n\n",
                dev.display_name().c_str());
    std::printf("Table II bound for this device: %.0f ms\n\n", dev.d_upper_bound_table_ms);
  }

  std::vector<int> coarse;
  for (int d = 25; d <= 700; d += 25) coarse.push_back(d);
  const auto table_sweep = runner::run_campaign(
      "fig06:table", coarse,
      [&](int d, const runner::TrialContext& ctx) {
        core::OutcomeProbeConfig c;
        c.profile = dev;
        c.attacking_window = sim::ms(d);
        c.seed = ctx.seed;
        c.tier = tier;
        return core::TrialSession::local().run(c);
      },
      args);

  metrics::Table table({"D (ms)", "outcome", "max pixels (of 72)", "animation max",
                        "message drawn", "icon"});
  for (std::size_t i = 0; i < coarse.size(); ++i) {
    const auto& probe = table_sweep.results[i];
    table.add_row({metrics::fmt("%d", coarse[i]),
                   std::string(percept::to_string(probe.outcome)),
                   metrics::fmt("%d", probe.alert.max_pixels),
                   metrics::percent(probe.alert.max_completeness),
                   metrics::percent(probe.alert.max_message_progress),
                   probe.alert.icon_shown ? "yes" : "no"});
  }
  runner::emit(table, args);

  // Transition scan: probe every integer D, then walk the results in
  // submission order — same transitions the old sequential loop printed,
  // but the probes themselves run in parallel.
  std::vector<int> fine;
  for (int d = 1; d <= 900; ++d) fine.push_back(d);
  const auto scan_sweep = runner::run_campaign(
      "fig06:scan", fine,
      [&](int d, const runner::TrialContext& ctx) {
        core::OutcomeProbeConfig c;
        c.profile = dev;
        c.attacking_window = sim::ms(d);
        c.duration = sim::seconds(3);
        c.seed = ctx.seed;
        c.tier = tier;
        return core::TrialSession::local().run(c).outcome;
      },
      args);

  runner::note(args, "\nOutcome transition points (1 ms granularity):");
  percept::LambdaOutcome last = percept::LambdaOutcome::kL1;
  for (std::size_t i = 0; i < fine.size(); ++i) {
    const auto outcome = scan_sweep.results[i];
    if (outcome != last) {
      if (!args.csv) {
        std::printf("  D >= %3d ms -> %s\n", fine[i],
                    std::string(percept::to_string(outcome)).c_str());
      }
      last = outcome;
    }
    if (last == percept::LambdaOutcome::kL5) break;
  }
  runner::note(args, "\nShape check: outcomes progress L1 -> L2 -> L3 -> L4 -> L5 as D grows,");
  runner::note(args, "matching Fig. 6a-6e (view container first, then message, then icon).");
  runner::finish(args);
  return table_sweep.ok() && scan_sweep.ok() ? 0 : 1;
}
