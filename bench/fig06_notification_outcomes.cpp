// Fig. 6 — the five possible outcomes Λ1..Λ5 of the notification view as
// the attacking window D grows, produced by running the actual
// draw-and-destroy overlay attack at each D on a reference device and
// classifying what the user could see.
#include <cstdio>

#include "core/attack_analysis.hpp"
#include "device/registry.hpp"
#include "metrics/table.hpp"
#include "percept/outcomes.hpp"

int main() {
  using namespace animus;
  const auto& dev = device::reference_device_android9();
  std::printf("=== Fig. 6: notification view outcomes vs D on %s ===\n\n",
              dev.display_name().c_str());
  std::printf("Table II bound for this device: %.0f ms\n\n", dev.d_upper_bound_table_ms);

  metrics::Table table({"D (ms)", "outcome", "max pixels (of 72)", "animation max",
                        "message drawn", "icon"});
  percept::LambdaOutcome prev = percept::LambdaOutcome::kL1;
  for (int d = 25; d <= 700; d += 25) {
    const auto probe = core::probe_outcome(dev, sim::ms(d));
    table.add_row({metrics::fmt("%d", d), std::string(percept::to_string(probe.outcome)),
                   metrics::fmt("%d", probe.alert.max_pixels),
                   metrics::percent(probe.alert.max_completeness),
                   metrics::percent(probe.alert.max_message_progress),
                   probe.alert.icon_shown ? "yes" : "no"});
    if (probe.outcome != prev) prev = probe.outcome;
  }
  std::fputs(table.to_string().c_str(), stdout);

  std::puts("\nOutcome transition points (1 ms granularity):");
  percept::LambdaOutcome last = percept::LambdaOutcome::kL1;
  for (int d = 1; d <= 900; ++d) {
    const auto probe = core::probe_outcome(dev, sim::ms(d), sim::seconds(3));
    if (probe.outcome != last) {
      std::printf("  D >= %3d ms -> %s\n", d,
                  std::string(percept::to_string(probe.outcome)).c_str());
      last = probe.outcome;
    }
    if (last == percept::LambdaOutcome::kL5) break;
  }
  std::puts("\nShape check: outcomes progress L1 -> L2 -> L3 -> L4 -> L5 as D grows,");
  std::puts("matching Fig. 6a-6e (view container first, then message, then icon).");
  return 0;
}
