// Table III — success rates and error taxonomy of the password-stealing
// attack (draw-and-destroy toast fake keyboard + draw-and-destroy overlay
// interception), for password lengths 4/6/8/10/12.
//
// Protocol mirrors Section VI-C1: 30 participants x 10 random passwords
// per length, mixed character classes across sub-keyboards, per-device
// attacking window from the Table II bounds, 3.5 s toasts.
//
// Paper row: success 92.3 / 90 / 88 / 86.3 / 84.3 (%), with length
// errors 10/15/19/23/26, wrong keys 7/8/8/9/9, capitalization 6/7/9/9/12
// (out of 300 trials per length).
//
// The 1500 main trials plus the per-family appendix fan out through
// runner::run_campaign as the "table03" / "table03:family" sections of
// one checkpoint; each trial draws its password and world seed from its
// root-derived TrialContext stream, and the full PasswordTrialResult
// rides through the field codec (checkpoint, shard pipe, --trials-out).
#include <cstdio>
#include <vector>

#include "core/report.hpp"
#include "core/trial_session.hpp"
#include "core/trial_fields.hpp"
#include "device/registry.hpp"
#include "input/password.hpp"
#include "input/typist.hpp"
#include "metrics/table.hpp"
#include "runner/bench_cli.hpp"
#include "runner/runner.hpp"
#include "victim/catalog.hpp"

int main(int argc, char** argv) {
  using namespace animus;
  const auto args = runner::BenchArgs::parse(argc, argv);
  const auto panel = input::participant_panel();
  const auto devices = device::all_devices();
  const auto apps = victim::table_iv_apps();
  constexpr int kPasswordsPerParticipant = 10;
  const std::vector<int> lengths = {4, 6, 8, 10, 12};

  struct Trial {
    int length;
    std::size_t participant;
    int rep;
  };
  std::vector<Trial> trials;
  for (int len : lengths)
    for (std::size_t p = 0; p < panel.size(); ++p)
      for (int rep = 0; rep < kPasswordsPerParticipant; ++rep) trials.push_back({len, p, rep});

  const auto sw = runner::run_campaign(
      "table03", trials,
      [&](const Trial& t, const runner::TrialContext& ctx) {
        core::PasswordTrialConfig c;
        c.profile = devices[t.participant % devices.size()];
        c.app = apps[t.participant % apps.size()].spec;
        c.typist = panel[t.participant];
        auto password_rng = ctx.rng().fork("password");
        c.password = input::random_password(static_cast<std::size_t>(t.length), password_rng);
        c.seed = ctx.rng().fork("world").next_u64();
        return core::TrialSession::local().run(c);
      },
      args);

  runner::note(args, "=== Table III: password stealing success rates and errors ===");
  runner::note(args, "(30 participants x 10 passwords per length)\n");
  metrics::Table table({"Password length", "Length errors", "Wrong touched keys",
                        "Capitalization errors", "Success rate", "paper"});
  const char* paper[] = {"92.3%", "90.0%", "88.0%", "86.3%", "84.3%"};
  const int per_length = static_cast<int>(panel.size()) * kPasswordsPerParticipant;
  double prev_success = 101.0;
  bool monotone = true;
  std::size_t i = 0;
  for (std::size_t row = 0; row < lengths.size(); ++row) {
    int ok = 0, e_len = 0, e_cap = 0, e_key = 0;
    for (int n = 0; n < per_length; ++n, ++i) {
      const auto error = sw.results[i].error;
      ok += error == core::PasswordErrorKind::kNone;
      e_len += error == core::PasswordErrorKind::kLength;
      e_cap += error == core::PasswordErrorKind::kCapitalization;
      e_key += error == core::PasswordErrorKind::kWrongKey;
    }
    const double success = 100.0 * ok / per_length;
    monotone &= success <= prev_success + 5.0;  // allow small non-monotonic wiggle
    prev_success = success;
    table.add_row({metrics::fmt("%d", lengths[row]), metrics::fmt("%d", e_len),
                   metrics::fmt("%d", e_key), metrics::fmt("%d", e_cap),
                   metrics::fmt("%.1f%%", success), paper[row]});
  }
  runner::emit(table, args);
  if (!args.csv) {
    std::puts("\nShape checks (Section VI-C1):");
    std::printf("  - success declines with password length: %s\n", monotone ? "yes" : "NO");
    std::puts("  - length errors (mistouches) are the dominant error class and grow");
    std::puts("    with length, as in the paper's Table III.");
  }

  // Appendix: the same protocol at length 8, split by Android family —
  // the mistouch gap Tmis drives the differences.
  struct FamilyTrial {
    std::size_t device;
    int rep;
  };
  std::vector<FamilyTrial> family_trials;
  for (std::size_t d = 0; d < devices.size(); ++d)
    for (int rep = 0; rep < 6; ++rep) family_trials.push_back({d, rep});

  const auto fsw = runner::run_campaign(
      "table03:family", family_trials,
      [&](const FamilyTrial& t, const runner::TrialContext& ctx) {
        core::PasswordTrialConfig c;
        c.profile = devices[t.device];
        c.app = apps[t.device % apps.size()].spec;
        c.typist = panel[(t.device + static_cast<std::size_t>(t.rep)) % panel.size()];
        auto password_rng = ctx.rng().fork("password");
        c.password = input::random_password(8, password_rng);
        c.seed = ctx.rng().fork("world").next_u64();
        return core::TrialSession::local().run(c);
      },
      args);

  runner::note(args, "\nAppendix: length-8 success by Android version family:");
  metrics::Table by_family({"family", "trials", "success", "E[Tmis] range (ms)"});
  for (const auto* fam : {"Android 8.x", "Android 9.x", "Android 10.0", "Android 11.0"}) {
    int ok = 0, n = 0;
    double tmis_lo = 1e9, tmis_hi = 0;
    for (std::size_t j = 0; j < family_trials.size(); ++j) {
      const auto& dev = devices[family_trials[j].device];
      if (std::string(device::version_family(dev.version)) != fam) continue;
      tmis_lo = std::min(tmis_lo, dev.expected_tmis_ms());
      tmis_hi = std::max(tmis_hi, dev.expected_tmis_ms());
      ++n;
      ok += fsw.results[j].success;
    }
    by_family.add_row({fam, metrics::fmt("%d", n), metrics::fmt("%.1f%%", 100.0 * ok / n),
                       metrics::fmt("%.1f-%.1f", tmis_lo, tmis_hi)});
  }
  runner::emit(by_family, args);
  runner::finish(args);
  return sw.ok() && fsw.ok() ? 0 : 1;
}
