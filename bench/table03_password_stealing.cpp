// Table III — success rates and error taxonomy of the password-stealing
// attack (draw-and-destroy toast fake keyboard + draw-and-destroy overlay
// interception), for password lengths 4/6/8/10/12.
//
// Protocol mirrors Section VI-C1: 30 participants x 10 random passwords
// per length, mixed character classes across sub-keyboards, per-device
// attacking window from the Table II bounds, 3.5 s toasts.
//
// Paper row: success 92.3 / 90 / 88 / 86.3 / 84.3 (%), with length
// errors 10/15/19/23/26, wrong keys 7/8/8/9/9, capitalization 6/7/9/9/12
// (out of 300 trials per length).
#include <cstdio>

#include "core/report.hpp"
#include "device/registry.hpp"
#include "input/password.hpp"
#include "input/typist.hpp"
#include "metrics/table.hpp"
#include "victim/catalog.hpp"

int main() {
  using namespace animus;
  const auto panel = input::participant_panel();
  const auto devices = device::all_devices();
  const auto apps = victim::table_iv_apps();
  constexpr int kPasswordsPerParticipant = 10;

  std::puts("=== Table III: password stealing success rates and errors ===");
  std::puts("(30 participants x 10 passwords per length)\n");
  metrics::Table table({"Password length", "Length errors", "Wrong touched keys",
                        "Capitalization errors", "Success rate", "paper"});
  const char* paper[] = {"92.3%", "90.0%", "88.0%", "86.3%", "84.3%"};
  int row = 0;
  double prev_success = 101.0;
  bool monotone = true;
  for (int len : {4, 6, 8, 10, 12}) {
    int ok = 0, n = 0, e_len = 0, e_cap = 0, e_key = 0;
    for (std::size_t p = 0; p < panel.size(); ++p) {
      for (int trial = 0; trial < kPasswordsPerParticipant; ++trial) {
        core::PasswordTrialConfig c;
        c.profile = devices[p % devices.size()];
        c.app = apps[p % apps.size()].spec;
        c.typist = panel[p];
        sim::Rng rng{static_cast<std::uint64_t>(len * 100000 + p * 100 + trial)};
        c.password = input::random_password(static_cast<std::size_t>(len), rng);
        c.seed = static_cast<std::uint64_t>(len) * 7919 + p * 101 + trial;
        const auto r = core::run_password_trial(c);
        ++n;
        ok += r.success;
        e_len += r.error == core::PasswordErrorKind::kLength;
        e_cap += r.error == core::PasswordErrorKind::kCapitalization;
        e_key += r.error == core::PasswordErrorKind::kWrongKey;
      }
    }
    const double success = 100.0 * ok / n;
    monotone &= success <= prev_success + 5.0;  // allow small non-monotonic wiggle
    prev_success = success;
    table.add_row({metrics::fmt("%d", len), metrics::fmt("%d", e_len),
                   metrics::fmt("%d", e_key), metrics::fmt("%d", e_cap),
                   metrics::fmt("%.1f%%", success), paper[row++]});
  }
  std::fputs(table.to_string().c_str(), stdout);
  std::puts("\nShape checks (Section VI-C1):");
  std::printf("  - success declines with password length: %s\n", monotone ? "yes" : "NO");
  std::puts("  - length errors (mistouches) are the dominant error class and grow");
  std::puts("    with length, as in the paper's Table III.");

  // Appendix: the same protocol at length 8, split by Android family —
  // the mistouch gap Tmis drives the differences.
  std::puts("\nAppendix: length-8 success by Android version family:");
  metrics::Table by_family({"family", "trials", "success", "E[Tmis] range (ms)"});
  for (const auto* fam : {"Android 8.x", "Android 9.x", "Android 10.0", "Android 11.0"}) {
    int ok = 0, n = 0;
    double tmis_lo = 1e9, tmis_hi = 0;
    for (std::size_t d = 0; d < devices.size(); ++d) {
      if (std::string(device::version_family(devices[d].version)) != fam) continue;
      tmis_lo = std::min(tmis_lo, devices[d].expected_tmis_ms());
      tmis_hi = std::max(tmis_hi, devices[d].expected_tmis_ms());
      for (int trial = 0; trial < 6; ++trial) {
        core::PasswordTrialConfig c;
        c.profile = devices[d];
        c.app = apps[d % apps.size()].spec;
        c.typist = panel[(d + trial) % panel.size()];
        sim::Rng rng{static_cast<std::uint64_t>(800000 + d * 100 + trial)};
        c.password = input::random_password(8, rng);
        c.seed = static_cast<std::uint64_t>(900000 + d * 100 + trial);
        ++n;
        ok += core::run_password_trial(c).success;
      }
    }
    by_family.add_row({fam, metrics::fmt("%d", n), metrics::fmt("%.1f%%", 100.0 * ok / n),
                       metrics::fmt("%.1f-%.1f", tmis_lo, tmis_hi)});
  }
  std::fputs(by_family.to_string().c_str(), stdout);
  return 0;
}
