// attack_packs — sweep registered attack scenarios through the shared
// campaign runner.
//
// Every scenario in core::scenario_registry() (the four paper attacks
// plus the related-work packs: tapjacking, notification-abuse,
// frosted-glass) exposes a canonical campaign grid; this bench runs it
// with full BenchArgs plumbing, so one binary exercises any pack under
// any {--tier, --backend, --jobs, --shards, --batch} combination:
//
//   attack_packs --list-scenarios
//   attack_packs --scenario tapjacking --csv
//   attack_packs --scenario frosted-glass --tier analytic --csv
//   attack_packs --scenario notification-abuse --backend process --shards 3
//
// The CSV is the determinism contract: byte-identical for a given
// scenario across every execution strategy (CI's scenario-smoke job
// diffs them). Without --scenario, all registered scenarios run in
// registry (sorted-name) order.
#include <cstdio>

#include "core/attack_scenario.hpp"
#include "metrics/table.hpp"
#include "runner/bench_cli.hpp"
#include "service/benches.hpp"

int main(int argc, char** argv) {
  using namespace animus;
  const auto args = runner::BenchArgs::parse(argc, argv);

  bool ok = true;
  for (const core::AttackScenario* s : core::scenario_registry()) {
    if (!args.scenario.empty() && s->name != args.scenario) continue;
    runner::note(args, metrics::fmt("=== scenario %s: %s ===\n", s->name.c_str(),
                                    s->description.c_str())
                           .c_str());
    const service::CampaignOutput out = service::run_scenario_campaign(*s, args);
    runner::emit(out.table, args);
    if (!args.csv) {
      std::printf("\n%zu trials, %zu errors.\n", out.trials, out.errors);
    }
    ok = ok && out.ok;
  }
  runner::finish(args);
  return ok ? 0 : 1;
}
