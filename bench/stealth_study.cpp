// Section VI-C3 — stealthiness survey: 30 participants type given
// passwords in the Bank of America app with the malicious app running in
// the background; each is then asked whether they observed anything
// abnormal. Paper result: 1 participant reported lag; nobody noticed
// anything suspicious.
#include <cstdio>

#include "core/report.hpp"
#include "device/registry.hpp"
#include "input/typist.hpp"
#include "metrics/table.hpp"
#include "percept/survey.hpp"
#include "victim/catalog.hpp"

int main() {
  using namespace animus;
  const auto panel = input::participant_panel();
  const auto devices = device::all_devices();
  sim::Rng survey_rng{20220704};

  std::puts("=== Stealthiness survey: 30 participants on Bank of America ===\n");
  percept::SurveyTally tally;
  metrics::Table table({"Participant", "device", "password stolen", "alert outcome",
                        "min fake-kbd alpha", "report"});
  for (std::size_t p = 0; p < panel.size(); ++p) {
    core::PasswordTrialConfig c;
    c.profile = devices[p];
    c.app = victim::find_app("Bank of America")->spec;
    c.typist = panel[p];
    c.password = "tk&%48GH";  // the paper's demo password
    c.seed = 31000 + p;
    const auto r = core::run_password_trial(c);
    const auto perception = percept::judge_session(r.alert, r.flicker, survey_rng);
    tally.add(perception);
    table.add_row({panel[p].name, c.profile.model, r.success ? "yes" : "partial",
                   std::string(percept::to_string(r.alert_outcome)),
                   metrics::fmt("%.2f", r.flicker.min_alpha),
                   perception.noticed_attack() ? "NOTICED ATTACK"
                   : perception.reported_lag  ? "reported lag"
                                              : "nothing"});
  }
  std::fputs(table.to_string().c_str(), stdout);
  std::printf("\nAttack arm: %d participants, %d noticed the attack, %d reported lag, "
              "%d reported nothing.\n",
              tally.participants, tally.noticed_attack, tally.reported_lag,
              tally.reported_nothing);

  // Control arm (paper: "We investigate two scenarios, the smartphone
  // with our malicious app and without"): same sessions, no malware, so
  // there is no attack overhead to misattribute to lag either.
  percept::SurveyTally control;
  for (std::size_t p = 0; p < panel.size(); ++p) {
    percept::SurveyConfig no_overhead;
    no_overhead.lag_report_rate = 0.0;  // nothing running to cause lag
    control.add(percept::judge_session(server::SystemUi::AlertStats{},
                                       percept::FlickerResult{}, survey_rng, no_overhead));
  }
  std::printf("Control arm: %d participants, %d noticed anything, %d reported lag.\n",
              control.participants, control.noticed_attack, control.reported_lag);

  std::puts("\nPaper: \"Only one subject reported that there were lags ... nobody noticed");
  std::puts("any suspicious thing.\"");
  return 0;
}
