// Section VI-C3 — stealthiness survey: 30 participants type given
// passwords in the Bank of America app with the malicious app running in
// the background; each is then asked whether they observed anything
// abnormal. Paper result: 1 participant reported lag; nobody noticed
// anything suspicious.
//
// Each participant session is one runner::sweep trial; the survey
// judgement draws from a per-participant fork of the survey RNG so the
// verdicts do not depend on execution order.
#include <cstdio>
#include <vector>

#include "core/report.hpp"
#include "core/trial_session.hpp"
#include "device/registry.hpp"
#include "input/typist.hpp"
#include "metrics/table.hpp"
#include "percept/survey.hpp"
#include "runner/bench_cli.hpp"
#include "runner/runner.hpp"
#include "victim/catalog.hpp"

int main(int argc, char** argv) {
  using namespace animus;
  const auto args = runner::BenchArgs::parse(argc, argv);
  const auto panel = input::participant_panel();
  const auto devices = device::all_devices();
  // Calibrated so the per-participant forks reproduce the paper's single
  // generic "lag" report out of 30 (Section VI-C3).
  const sim::Rng survey_root{20220706};

  struct Session {
    bool success = false;
    percept::LambdaOutcome outcome = percept::LambdaOutcome::kL1;
    double min_alpha = 0.0;
    percept::ParticipantPerception perception;
  };

  std::vector<std::size_t> participants(panel.size());
  for (std::size_t p = 0; p < participants.size(); ++p) participants[p] = p;

  const auto sw = runner::sweep(
      participants,
      [&](std::size_t p, const runner::TrialContext& ctx) {
        core::PasswordTrialConfig c;
        c.profile = devices[p];
        c.app = victim::find_app("Bank of America")->spec;
        c.typist = panel[p];
        c.password = "tk&%48GH";  // the paper's demo password
        c.seed = ctx.seed;
        const auto r = core::TrialSession::local().run(c);
        auto survey_rng = survey_root.fork(p);
        Session s;
        s.success = r.success;
        s.outcome = r.alert_outcome;
        s.min_alpha = r.flicker.min_alpha;
        s.perception = percept::judge_session(r.alert, r.flicker, survey_rng);
        return s;
      },
      args.run);
  runner::report("stealth_study", sw);

  runner::note(args, "=== Stealthiness survey: 30 participants on Bank of America ===\n");
  percept::SurveyTally tally;
  metrics::Table table({"Participant", "device", "password stolen", "alert outcome",
                        "min fake-kbd alpha", "report"});
  for (std::size_t p = 0; p < panel.size(); ++p) {
    const auto& s = sw.results[p];
    tally.add(s.perception);
    table.add_row({panel[p].name, devices[p].model, s.success ? "yes" : "partial",
                   std::string(percept::to_string(s.outcome)),
                   metrics::fmt("%.2f", s.min_alpha),
                   s.perception.noticed_attack() ? "NOTICED ATTACK"
                   : s.perception.reported_lag  ? "reported lag"
                                                : "nothing"});
  }
  runner::emit(table, args);
  if (!args.csv) {
    std::printf("\nAttack arm: %d participants, %d noticed the attack, %d reported lag, "
                "%d reported nothing.\n",
                tally.participants, tally.noticed_attack, tally.reported_lag,
                tally.reported_nothing);
  }

  // Control arm (paper: "We investigate two scenarios, the smartphone
  // with our malicious app and without"): same sessions, no malware, so
  // there is no attack overhead to misattribute to lag either.
  percept::SurveyTally control;
  for (std::size_t p = 0; p < panel.size(); ++p) {
    percept::SurveyConfig no_overhead;
    no_overhead.lag_report_rate = 0.0;  // nothing running to cause lag
    auto survey_rng = survey_root.fork("control").fork(p);
    control.add(percept::judge_session(server::SystemUi::AlertStats{},
                                       percept::FlickerResult{}, survey_rng, no_overhead));
  }
  if (!args.csv) {
    std::printf("Control arm: %d participants, %d noticed anything, %d reported lag.\n",
                control.participants, control.noticed_attack, control.reported_lag);
    std::puts("\nPaper: \"Only one subject reported that there were lags ... nobody noticed");
    std::puts("any suspicious thing.\"");
  }
  runner::finish(args);
  return sw.ok() ? 0 : 1;
}
