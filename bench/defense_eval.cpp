// Section VII — defense evaluation.
//  (a) IPC-based detection: Binder transaction analysis flags the
//      draw-and-destroy overlay attack and spares benign overlay apps.
//  (b) Enhanced notification defense (t = 690 ms): the alert completes
//      its slide-in and stays visible; the attack is defeated at any D.
//  (c) Toast-gap scheduling: successive toasts are separated, making the
//      fake keyboard flicker perceptibly.
//  (d) Detection-to-enforcement daemon: revokes the attacker's windows.
//
// The per-D probes of (b) and the per-gap probes of (c) are independent
// Worlds, so they fan out through runner::sweep; the single-world
// narratives (a) and (d) run inline. All tables are assembled in
// submission order, so stdout is byte-identical at any --jobs value.
#include <cstdio>
#include <vector>

#include "core/overlay_attack.hpp"
#include "core/trial_session.hpp"
#include "defense/enforcement.hpp"
#include "defense/ipc_defense.hpp"
#include "defense/notification_defense.hpp"
#include "defense/toast_defense.hpp"
#include "device/registry.hpp"
#include "metrics/table.hpp"
#include "percept/outcomes.hpp"
#include "runner/bench_cli.hpp"
#include "runner/runner.hpp"
#include "server/world.hpp"

using namespace animus;

namespace {

server::World make_world(const device::DeviceProfile& dev) {
  server::WorldConfig wc;
  wc.profile = dev;
  wc.trace_enabled = false;
  return server::World{wc};
}

void run_benign_widget(server::World& world, int uid) {
  world.server().grant_overlay_permission(uid);
  server::OverlaySpec spec;
  spec.bounds = {800, 200, 200, 200};
  spec.content = "music:bubble";
  const auto h = world.server().add_view(uid, spec);
  world.loop().schedule_at(sim::seconds(50), [&world, uid, h] {
    world.server().remove_view(uid, h);
  });
}

void run_toggler(server::World& world, int uid) {
  world.server().grant_overlay_permission(uid);
  for (int i = 0; i < 15; ++i) {
    world.loop().schedule_at(sim::seconds(2 * i), [&world, uid] {
      server::OverlaySpec spec;
      spec.bounds = {0, 0, 300, 300};
      spec.content = "nav:banner";
      const auto h = world.server().add_view(uid, spec);
      world.loop().schedule_after(sim::ms(1500),
                                  [&world, uid, h] { world.server().remove_view(uid, h); });
    });
  }
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = runner::BenchArgs::parse(argc, argv);
  const auto& dev = device::reference_device_android9();

  // ---------------------------------------------------------- (a) IPC --
  runner::note(args, "=== Defense (a): IPC-based Binder transaction analysis ===\n");
  metrics::Table ipc_table({"workload", "uid", "transactions", "flagged", "expected"});
  {
    auto world = make_world(dev);
    world.server().grant_overlay_permission(server::kMalwareUid);
    defense::IpcDefenseAnalyzer analyzer;
    analyzer.attach(world.transactions());
    core::OverlayAttack attack{world, {}};
    attack.start();
    run_benign_widget(world, server::kBenignUid);
    run_toggler(world, server::kBenignUid + 1);
    world.run_until(sim::seconds(60));
    attack.stop();
    auto row = [&](const char* name, int uid, bool expected) {
      ipc_table.add_row({name, metrics::fmt("%d", uid),
                         metrics::fmt("%zu", world.transactions().for_uid(uid).size()),
                         analyzer.flagged(uid) ? "YES" : "no", expected ? "YES" : "no"});
    };
    row("draw-and-destroy overlay attack", server::kMalwareUid, true);
    row("benign floating widget", server::kBenignUid, false);
    row("benign 2s-toggling banner", server::kBenignUid + 1, false);
    runner::emit(ipc_table, args);
    const auto& det = analyzer.detections();
    if (!det.empty() && !args.csv) {
      std::printf("\nDetection: uid=%d after %d rapid remove->add pairs, flagged at "
                  "%.1f s into the attack.\n",
                  det[0].uid, det[0].pairs, sim::to_seconds(det[0].last_pair));
    }
  }

  // --------------------------------------- (b) enhanced notification --
  struct AlertTrial {
    percept::LambdaOutcome plain;
    percept::LambdaOutcome defended;
    double visible_s;
  };
  const std::vector<int> windows = {60, 150, 215, 300};
  const auto alert_sweep = runner::sweep(
      windows,
      [&](int d, const runner::TrialContext&) {
        const auto plain = core::TrialSession::local().run(core::OutcomeProbeConfig{
            .profile = dev, .attacking_window = sim::ms(d), .duration = sim::seconds(10)});
        const auto defended = defense::probe_attack_under_defense(
            dev, sim::ms(d), defense::kEnhancedAlertRemovalDelay, sim::seconds(10));
        return AlertTrial{plain.outcome, defended.outcome,
                          sim::to_seconds(defended.alert.visible_time)};
      },
      args.run);
  runner::report("defense_eval:alert", alert_sweep);

  runner::note(args, "\n=== Defense (b): enhanced notification (t = 690 ms) ===\n");
  metrics::Table nd_table({"D (ms)", "outcome w/o defense", "outcome with defense",
                           "alert visible (s, 10s attack)"});
  for (std::size_t i = 0; i < windows.size(); ++i) {
    const auto& r = alert_sweep.results[i];
    nd_table.add_row({metrics::fmt("%d", windows[i]),
                      std::string(percept::to_string(r.plain)),
                      std::string(percept::to_string(r.defended)),
                      metrics::fmt("%.1f", r.visible_s)});
  }
  runner::emit(nd_table, args);
  runner::note(args,
               "\nWith the defense the alert always completes (L5) and remains readable —");
  runner::note(args, "the paper validated t = 690 ms on a Google Pixel 2.");

  // ------------------------------------------------- (c) toast gap --
  struct ToastTrial {
    double min_alpha;
    double dip_ms;
    bool noticeable;
    int toasts_shown;
  };
  const std::vector<int> gaps = {0, 250, 500};
  const auto toast_sweep = runner::sweep(
      gaps,
      [&](int gap, const runner::TrialContext&) {
        const auto probe = defense::probe_toast_attack(dev, sim::ms(gap));
        return ToastTrial{probe.flicker.min_alpha, sim::to_ms(probe.flicker.longest_dip),
                          probe.flicker.noticeable, probe.toasts_shown};
      },
      args.run);
  runner::report("defense_eval:toast", toast_sweep);

  runner::note(args, "\n=== Defense (c): toast scheduling gap ===\n");
  metrics::Table tg_table({"inter-toast gap (ms)", "min alpha", "longest dip (ms)",
                           "flicker noticed", "toasts shown (20s)"});
  for (std::size_t i = 0; i < gaps.size(); ++i) {
    const auto& r = toast_sweep.results[i];
    tg_table.add_row({metrics::fmt("%d", gaps[i]), metrics::fmt("%.2f", r.min_alpha),
                      metrics::fmt("%.0f", r.dip_ms), r.noticeable ? "YES" : "no",
                      metrics::fmt("%d", r.toasts_shown)});
  }
  runner::emit(tg_table, args);
  runner::note(args,
               "\nStock scheduling: the fade-out overlap hides toast switching entirely;");
  runner::note(args, "an enforced gap exposes the draw-and-destroy toast attack as flicker.");

  // --------------------------------------------- (d) enforcement --
  runner::note(args, "\n=== Defense (d): detection-to-enforcement daemon ===\n");
  {
    metrics::Table en_table({"scenario", "touches stolen (30, 1/s)", "neutralized at"});
    for (bool defended : {false, true}) {
      server::WorldConfig wc;
      wc.profile = dev;
      wc.trace_enabled = false;
      server::World world{wc};
      world.server().grant_overlay_permission(server::kMalwareUid);
      defense::DefenseDaemon daemon{world};
      if (defended) daemon.install();
      core::OverlayAttackConfig oc;
      oc.attacking_window = sim::ms(190);
      core::OverlayAttack attack{world, oc};
      attack.start();
      for (int i = 1; i <= 30; ++i) {
        world.loop().schedule_at(sim::seconds(i),
                                 [&world] { world.input().inject_tap({540, 1200}); });
      }
      world.run_until(sim::seconds(31));
      attack.stop();
      std::string when = "-";
      if (!daemon.actions().empty()) {
        when = metrics::fmt("%.2f s", sim::to_seconds(daemon.actions()[0].enforced_at));
      }
      en_table.add_row({defended ? "daemon installed" : "stock system",
                        metrics::fmt("%d", attack.stats().captures), when});
    }
    runner::emit(en_table, args);
    runner::note(args,
                 "\nThe daemon revokes SYSTEM_ALERT_WINDOW and sweeps the attacker's windows");
    runner::note(args, "~1.3 s into the attack, capping the theft at the first keystroke or two.");
  }
  runner::finish(args);
  return alert_sweep.ok() && toast_sweep.ok() ? 0 : 1;
}
